#include "server/search_service.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "common/failpoint.h"
#include "core/rewrite_rules.h"
#include "index/block_cache.h"
#include "server/pinned_stats.h"

namespace graft::server {

namespace {

using Clock = std::chrono::steady_clock;

// Injectable between the successful load and the generation swap, so tests
// can hold a reload failure at the last possible moment.
GRAFT_DEFINE_FAILPOINT(g_fp_reload_swap, "service.reload.swap");

uint64_t MicrosSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

std::string RetryAfterHeader(unsigned seconds) {
  return "Retry-After: " + std::to_string(seconds) + "\r\n";
}

// Answers a connection that will not be handled (admission rejection or
// shutdown) without ever reading the request. Closing with the client's
// request bytes still unread would send an RST that can destroy the 503
// before the client reads it, so: write the response, half-close (FIN),
// then drain briefly until the client's FIN — bounded at ~50ms so a
// stalled peer cannot wedge the accept thread.
void RejectConnection(int fd, const std::string& body,
                      unsigned retry_after_s) {
  (void)WriteResponse(fd, 503, "application/json", body,
                      RetryAfterHeader(retry_after_s));
  ::shutdown(fd, SHUT_WR);
  char drain[1024];
  for (int spin = 0; spin < 50; ++spin) {
    const ssize_t n = ::recv(fd, drain, sizeof(drain), MSG_DONTWAIT);
    if (n == 0) break;  // clean FIN from the client
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(fd);
}

void AppendMsField(std::string* out, std::string_view name, double micros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%.3f",
                static_cast<int>(name.size()), name.data(), micros / 1000.0);
  *out += buf;
}

// The full per-operator counter object (the base "exec" block keeps its
// original three fields for compatibility; explain gets everything).
void AppendFullExecJson(std::string* out, const exec::ExecStats& s) {
  *out += "{\"docs_visited\":" + std::to_string(s.docs_visited) +
          ",\"rows_built\":" + std::to_string(s.rows_built) +
          ",\"positions_scanned\":" + std::to_string(s.positions_scanned) +
          ",\"count_entries_scanned\":" +
          std::to_string(s.count_entries_scanned) +
          ",\"blocks_decoded\":" + std::to_string(s.blocks_decoded) +
          ",\"gallop_probes\":" + std::to_string(s.gallop_probes) +
          ",\"skip_calls\":" + std::to_string(s.skip_calls) +
          ",\"skip_hits\":" + std::to_string(s.skip_hits) +
          ",\"rank_heap_ops\":" + std::to_string(s.rank_heap_ops) +
          ",\"rank_stopping_depth\":" +
          std::to_string(s.rank_stopping_depth) +
          ",\"docs_scored\":" + std::to_string(s.docs_scored) +
          ",\"docs_pruned\":" + std::to_string(s.docs_pruned) +
          ",\"topk_blocks_skipped\":" +
          std::to_string(s.topk_blocks_skipped) +
          ",\"topk_blocks_decoded\":" +
          std::to_string(s.topk_blocks_decoded) +
          ",\"topk_ceiling_probes\":" +
          std::to_string(s.topk_ceiling_probes) +
          ",\"topk_threshold_updates\":" +
          std::to_string(s.topk_threshold_updates) +
          ",\"topk_sorted_accesses\":" +
          std::to_string(s.topk_sorted_accesses) +
          ",\"topk_random_accesses\":" +
          std::to_string(s.topk_random_accesses) +
          ",\"topk_bound_refinements\":" +
          std::to_string(s.topk_bound_refinements) +
          ",\"block_cache_hits\":" + std::to_string(s.block_cache_hits) +
          ",\"block_cache_misses\":" + std::to_string(s.block_cache_misses) +
          ",\"block_cache_evictions\":" +
          std::to_string(s.block_cache_evictions) +
          ",\"packed_payload_decodes\":" +
          std::to_string(s.packed_payload_decodes) + "}";
}

// "explain":{...} block: pinned generation, rewrite table, counters, trace.
void AppendExplainBlock(std::string* out, const core::SearchResult& result,
                        const common::QueryTrace& trace,
                        uint64_t pinned_generation) {
  *out += "\"explain\":{\"generation\":";
  *out += std::to_string(pinned_generation);
  *out += ",\"plan\":\"";
  JsonAppendEscaped(out, result.plan_text);
  *out += "\",\"rewrites\":[";
  bool first = true;
  for (const core::RewriteAttempt& attempt : result.rewrite_attempts) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"name\":\"";
    JsonAppendEscaped(out, core::OptimizationName(attempt.opt));
    *out += "\",\"fired\":";
    *out += attempt.fired ? "true" : "false";
    *out += ",\"verdict\":\"";
    JsonAppendEscaped(out, attempt.verdict);
    *out += "\"}";
  }
  *out += "],\"exec\":";
  AppendFullExecJson(out, result.exec_stats);
  *out += ",\"trace\":[";
  first = true;
  for (const common::TraceSpan& span : trace.spans()) {
    if (!first) *out += ",";
    first = false;
    char buf[96];
    *out += "{\"name\":\"";
    JsonAppendEscaped(out, span.name);
    std::snprintf(buf, sizeof(buf), "\",\"us\":%.1f,\"depth\":%u",
                  static_cast<double>(span.DurationNanos()) / 1000.0,
                  span.depth);
    *out += buf;
    if (!span.detail.empty()) {
      *out += ",\"detail\":\"";
      JsonAppendEscaped(out, span.detail);
      *out += "\"";
    }
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    default:
      return 500;
  }
}

std::string ErrorBody(const Status& status) {
  std::string body = "{\"error\":\"";
  JsonAppendEscaped(&body, StatusCodeName(status.code()));
  body += "\",\"message\":\"";
  JsonAppendEscaped(&body, status.message());
  body += "\"}";
  return body;
}

std::string SearchService::FormatResultsFragment(
    const std::vector<ma::ScoredDoc>& results) {
  std::string out = "\"results\":[";
  char buf[64];
  bool first = true;
  for (const ma::ScoredDoc& hit : results) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"doc\":%u,\"score\":%.17g}", hit.doc,
                  hit.score);
    out += buf;
  }
  out += "]";
  return out;
}

SearchService::SearchService(const core::Engine* engine,
                             ServiceOptions options)
    : options_(std::move(options)),
      // Non-owning: the caller guarantees lifetime, so the deleter is a
      // no-op. Reload would drop that guarantee, hence reloadable_ = false.
      engine_(std::shared_ptr<const core::Engine>(engine,
                                                  [](const core::Engine*) {})),
      reloadable_(false) {
  // A packed (mmap-loaded) index brings its own decoded-block cache; adopt
  // it so /stats and /metrics can report on it. Set once here, never
  // reassigned — handlers read block_cache_ without a lock.
  block_cache_ = engine->index().block_cache();
}

SearchService::SearchService(std::shared_ptr<const core::EngineBundle> bundle,
                             ServiceOptions options)
    : options_(std::move(options)),
      // Alias into the bundle: the snapshot's control block owns the whole
      // bundle, so index + segments + engine die together, after the last
      // in-flight request lets go.
      engine_(std::shared_ptr<const core::Engine>(bundle,
                                                  bundle->engine.get())),
      reloadable_(!options_.index_path.empty()) {
  // One decoded-block cache for the service's whole lifetime: adopt the
  // initial bundle's cache when it was mmap-loaded, otherwise create one
  // up front when mmap reloads are configured. Set once here, never
  // reassigned — handlers read block_cache_ without a lock; Reload() feeds
  // the same cache to every future generation.
  if (bundle->index != nullptr && bundle->index->block_cache() != nullptr) {
    block_cache_ = bundle->index->block_cache();
  } else if (options_.mmap_index) {
    block_cache_ =
        std::make_shared<index::BlockCache>(options_.block_cache_bytes);
  }
}

SearchService::~SearchService() { Shutdown(); }

Status SearchService::Start() {
  if (started_) {
    return Status::FailedPrecondition("service already started");
  }
  GRAFT_RETURN_IF_ERROR(listener_.Bind(options_.port));
  pool_ = std::make_unique<common::ThreadPool>(options_.handler_threads);
  started_at_ = Clock::now();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SearchService::Shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Interrupt();  // unblocks the pending accept
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();  // safe: no Accept can be running anymore
  // Drain: every admitted connection either has a handler queued or
  // running on the pool; wait until each has written its response.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock,
                   [this] { return inflight_.load(std::memory_order_acquire) ==
                                   0; });
  }
  pool_.reset();  // queue is empty by now; joins the workers
  started_ = false;
}

Status SearchService::Reload() {
  std::lock_guard<std::mutex> lock(reload_mu_);
  if (!reloadable_) {
    return Status::InvalidArgument(
        "reload unsupported: service was built without an index_path");
  }
  // Everything up to the store is fallible and leaves no trace: the old
  // generation keeps serving until the one atomic swap below.
  const auto fail = [this](const Status& status) {
    degraded_.store(true, std::memory_order_release);
    last_reload_error_ = std::string(StatusCodeName(status.code())) + ": " +
                         std::string(status.message());
    stats_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  core::BundleLoadOptions load;
  load.mmap_index = options_.mmap_index;
  load.block_cache = block_cache_;  // shared across generations (may be null)
  load.block_cache_bytes = options_.block_cache_bytes;
  StatusOr<core::EngineBundle> loaded = core::LoadEngineBundle(
      options_.index_path, options_.segments, options_.engine_threads, load);
  if (!loaded.ok()) return fail(loaded.status());
#ifdef GRAFT_FAILPOINTS_ENABLED
  {
    const Status injected = g_fp_reload_swap.Check();
    if (!injected.ok()) return fail(injected);
  }
#endif
  auto bundle =
      std::make_shared<const core::EngineBundle>(std::move(loaded).value());
  std::shared_ptr<const core::Engine> snapshot(bundle, bundle->engine.get());
  uint64_t old_cache_generation = 0;
  {
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    old_cache_generation = engine_->index().cache_generation();
    engine_ = std::move(snapshot);
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  // Drop the replaced generation's decoded blocks from the shared cache:
  // they can never be looked up again (cache keys carry the generation),
  // so leaving them in would squat on capacity until LRU pressure evicts
  // them. In-flight requests still pinning the old engine keep their
  // blocks alive via shared_ptr — this only removes cache references.
  if (block_cache_ != nullptr && old_cache_generation != 0) {
    block_cache_->EraseGeneration(old_cache_generation);
  }
  degraded_.store(false, std::memory_order_release);
  last_reload_error_.clear();
  stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void SearchService::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    StatusOr<int> accepted = listener_.Accept(options_.io_timeout_ms);
    if (!accepted.ok()) {
      // Accept fails persistently only when the listener is closed
      // (shutdown) or the process is out of fds; both end the loop.
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient failure (e.g. out of fds): back off instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int fd = *accepted;
    stats_.requests_total.fetch_add(1, std::memory_order_relaxed);

    // Connection-level admission: bound queued + running handlers.
    const size_t inflight =
        inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (inflight > options_.max_inflight ||
        stopping_.load(std::memory_order_acquire)) {
      // Fast rejection from the accept thread: no request read, no queue.
      const Status reason =
          inflight > options_.max_inflight
              ? Status::FailedPrecondition("server overloaded; retry")
              : Status::FailedPrecondition("server shutting down");
      RejectConnection(fd, ErrorBody(reason), options_.retry_after_s);
      stats_.RecordResponseCode(503);
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drain_cv_.notify_all();
      }
      continue;
    }

    const Clock::time_point admitted = Clock::now();
    pool_->Submit([this, fd, admitted] { HandleConnection(fd, admitted); });
  }
}

void SearchService::HandleConnection(int fd, Clock::time_point admitted) {
  const uint64_t queued_micros = MicrosSince(admitted);
  StatusOr<HttpRequest> request = ReadRequest(fd);
  Response response;
  if (!request.ok()) {
    stats_.malformed_requests.fetch_add(1, std::memory_order_relaxed);
    response.status_code = 400;
    response.body = ErrorBody(request.status());
  } else {
    response = Handle(*request, queued_micros);
  }
  const std::string extra_headers =
      response.retry_after_s > 0 ? RetryAfterHeader(response.retry_after_s)
                                 : std::string();
  (void)WriteResponse(fd, response.status_code, response.content_type,
                      response.body, extra_headers);
  ::close(fd);
  stats_.RecordResponseCode(response.status_code);
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

Response SearchService::Handle(const HttpRequest& request,
                               uint64_t queued_micros) {
  Response response;
  if (request.method != "GET") {
    response.status_code = 405;
    response.body = ErrorBody(
        Status::InvalidArgument("only GET is supported"));
    return response;
  }
  if (request.path == "/healthz") return HandleHealthz();
  if (request.path == "/shard/stats") return HandleShardStats(request);
  if (request.path == "/stats") return HandleStats();
  if (request.path == "/metrics") return HandleMetrics();
  if (request.path == "/admin/reload") return HandleReload();
  if (request.path == "/search") return HandleSearch(request, queued_micros);
  response.status_code = 404;
  response.body =
      ErrorBody(Status::NotFound("no such endpoint: " + request.path));
  return response;
}

Response SearchService::HandleShardStats(const HttpRequest& request) {
  stats_.shard_stats_requests.fetch_add(1, std::memory_order_relaxed);
  // Pin engine + generation together: the generation in this response is
  // the one the reported statistics came from, which is what the router's
  // expect_gen check on the subsequent /search validates against.
  const std::shared_ptr<const core::Engine> engine = SnapshotEngine();
  const uint64_t pinned_generation = generation();
  const index::InvertedIndex& index = engine->index();

  Response response;
  std::string body = "{\"generation\":";
  body += std::to_string(pinned_generation);
  body += ",\"doc_count\":";
  body += std::to_string(index.doc_count());
  body += ",\"total_words\":";
  body += std::to_string(index.total_words());
  body += ",\"terms\":[";
  const auto it = request.params.find("terms");
  std::string_view terms = it == request.params.end()
                               ? std::string_view()
                               : std::string_view(it->second);
  bool first = true;
  while (!terms.empty()) {
    const size_t comma = terms.find(',');
    const std::string_view term = terms.substr(0, comma);
    terms = comma == std::string_view::npos ? std::string_view()
                                            : terms.substr(comma + 1);
    if (term.empty()) continue;
    // Terms this shard has never seen are a normal outcome of corpus
    // partitioning, not an error: df=0/cf=0 sums correctly at the router.
    const TermId id = index.LookupTerm(term);
    const uint64_t df = id == kInvalidTerm ? 0 : index.DocFreq(id);
    const uint64_t cf = id == kInvalidTerm ? 0 : index.CollectionFreq(id);
    if (!first) body += ",";
    first = false;
    body += "{\"term\":\"";
    JsonAppendEscaped(&body, term);
    body += "\",\"df\":";
    body += std::to_string(df);
    body += ",\"cf\":";
    body += std::to_string(cf);
    body += "}";
  }
  body += "]}";
  response.body = std::move(body);
  return response;
}

Response SearchService::HandleHealthz() const {
  const std::shared_ptr<const core::Engine> engine = SnapshotEngine();
  Response response;
  response.body = "{\"status\":\"";
  response.body += degraded() ? "degraded" : "ok";
  response.body += "\",\"docs\":";
  response.body += std::to_string(engine->index().doc_count());
  response.body += ",\"segments\":";
  response.body += std::to_string(engine->segmented() == nullptr
                                      ? 1
                                      : engine->segmented()->segment_count());
  response.body += ",\"generation\":";
  response.body += std::to_string(generation());
  response.body += "}";
  return response;
}

Response SearchService::HandleStats() const {
  Response response;
  std::string body = stats_.ToJson();
  // Splice uptime + reload state into the stats object.
  body.pop_back();  // trailing '}'
  body += ",\"uptime_s\":";
  body += std::to_string(MicrosSince(started_at_) / 1000000);
  body += ",\"index_generation\":";
  body += std::to_string(generation());
  body += ",\"degraded\":";
  body += degraded() ? "true" : "false";
  body += ",\"last_reload_error\":\"";
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    JsonAppendEscaped(&body, last_reload_error_);
  }
  body += "\"";
  if (block_cache_ != nullptr) {
    const index::BlockCache::Snapshot cache = block_cache_->snapshot();
    body += ",\"block_cache\":{\"hits\":" + std::to_string(cache.hits) +
            ",\"misses\":" + std::to_string(cache.misses) +
            ",\"evictions\":" + std::to_string(cache.evictions) +
            ",\"inserts\":" + std::to_string(cache.inserts) +
            ",\"payload_decodes\":" + std::to_string(cache.payload_decodes) +
            ",\"bytes\":" + std::to_string(cache.bytes) +
            ",\"capacity_bytes\":" + std::to_string(cache.capacity_bytes) +
            ",\"entries\":" + std::to_string(cache.entries) + "}";
  }
  body += "}";
  response.body = std::move(body);
  return response;
}

Response SearchService::HandleMetrics() const {
  Response response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body = stats_.ToPrometheus();
  // Service-level gauges live here, next to the counters ServerStats owns.
  body += "# HELP graft_inflight_requests Admitted but unanswered requests.\n";
  body += "# TYPE graft_inflight_requests gauge\n";
  body += "graft_inflight_requests " +
          std::to_string(inflight_.load(std::memory_order_relaxed)) + "\n";
  body += "# HELP graft_index_generation Engine generation (1 + reloads).\n";
  body += "# TYPE graft_index_generation gauge\n";
  body += "graft_index_generation " + std::to_string(generation()) + "\n";
  body += "# HELP graft_degraded 1 while the last reload attempt failed.\n";
  body += "# TYPE graft_degraded gauge\n";
  body += std::string("graft_degraded ") + (degraded() ? "1" : "0") + "\n";
  body += "# HELP graft_uptime_seconds Seconds since Start().\n";
  body += "# TYPE graft_uptime_seconds gauge\n";
  body += "graft_uptime_seconds " +
          std::to_string(MicrosSince(started_at_) / 1000000) + "\n";
  if (block_cache_ != nullptr) {
    const index::BlockCache::Snapshot cache = block_cache_->snapshot();
    const struct {
      const char* name;
      const char* help;
      const char* type;
      uint64_t value;
    } rows[] = {
        {"graft_block_cache_hits_total",
         "Decoded-block cache lookups served from cache.", "counter",
         cache.hits},
        {"graft_block_cache_misses_total",
         "Decoded-block cache lookups that decoded from the mapped file.",
         "counter", cache.misses},
        {"graft_block_cache_evictions_total",
         "Decoded blocks evicted by LRU capacity pressure.", "counter",
         cache.evictions},
        {"graft_block_cache_inserts_total",
         "Decoded blocks inserted into the cache.", "counter", cache.inserts},
        {"graft_block_cache_payload_decodes_total",
         "Full-payload (docs+tfs+offsets) block decodes.", "counter",
         cache.payload_decodes},
        {"graft_block_cache_bytes", "Resident decoded bytes in the cache.",
         "gauge", cache.bytes},
        {"graft_block_cache_capacity_bytes",
         "Configured decoded-block cache capacity.", "gauge",
         cache.capacity_bytes},
        {"graft_block_cache_entries", "Decoded blocks resident in the cache.",
         "gauge", cache.entries},
    };
    for (const auto& row : rows) {
      body += std::string("# HELP ") + row.name + " " + row.help + "\n";
      body += std::string("# TYPE ") + row.name + " " + row.type + "\n";
      body += std::string(row.name) + " " + std::to_string(row.value) + "\n";
    }
  }
  response.body = std::move(body);
  return response;
}

Response SearchService::HandleReload() {
  Response response;
  const Status status = Reload();
  std::string body = "{\"reloaded\":";
  body += status.ok() ? "true" : "false";
  body += ",\"generation\":";
  body += std::to_string(generation());
  body += ",\"degraded\":";
  body += degraded() ? "true" : "false";
  if (!status.ok()) {
    response.status_code = HttpCodeForStatus(status) == 400 ? 400 : 500;
    body += ",\"error\":\"";
    JsonAppendEscaped(&body, StatusCodeName(status.code()));
    body += "\",\"message\":\"";
    JsonAppendEscaped(&body, status.message());
    body += "\"";
  }
  body += "}";
  response.body = std::move(body);
  return response;
}

Response SearchService::HandleSearch(const HttpRequest& request,
                                     uint64_t queued_micros) {
  const Clock::time_point handle_start = Clock::now();
  Response response;

  // ---- parameter parsing: every failure is a 4xx, never a crash ----
  core::SearchRequestParams params;
  uint64_t deadline_ms = options_.default_deadline_ms;
  const auto get = [&request](const char* name) -> const std::string* {
    const auto it = request.params.find(name);
    return it == request.params.end() ? nullptr : &it->second;
  };
  const std::string* q = get("q");
  if (q == nullptr) {
    response.status_code = 400;
    response.body = ErrorBody(
        Status::InvalidArgument("missing required parameter: q"));
    return response;
  }
  params.query = *q;
  params.top_k = options_.default_top_k;
  if (const std::string* scheme = get("scheme")) params.scheme = *scheme;
  const struct {
    const char* name;
    size_t* out;
  } counts[] = {
      {"k", &params.top_k},
      {"threads", &params.num_threads},
      {"segments", &params.segments},
  };
  for (const auto& field : counts) {
    if (const std::string* text = get(field.name)) {
      StatusOr<size_t> value = core::ParseCount(*text, field.name);
      if (!value.ok()) {
        response.status_code = HttpCodeForStatus(value.status());
        response.body = ErrorBody(value.status());
        return response;
      }
      *field.out = *value;
    }
  }
  if (const std::string* text = get("deadline_ms")) {
    StatusOr<size_t> value = core::ParseCount(*text, "deadline_ms");
    if (!value.ok() || *value == 0) {
      const Status status =
          value.ok() ? Status::InvalidArgument("deadline_ms must be > 0")
                     : value.status();
      response.status_code = HttpCodeForStatus(status);
      response.body = ErrorBody(status);
      return response;
    }
    deadline_ms = std::min<uint64_t>(*value, options_.max_deadline_ms);
  }
  if (params.top_k > options_.max_top_k) {
    response.status_code = 400;
    response.body = ErrorBody(Status::InvalidArgument(
        "k exceeds the server limit of " +
        std::to_string(options_.max_top_k)));
    return response;
  }
  bool explain = false;
  if (const std::string* text = get("explain")) {
    explain = *text == "1" || *text == "true";
  }

  // Pin the engine generation once: a reload that lands mid-request swaps
  // the service's pointer but cannot touch this snapshot, and the control
  // block keeps the whole old bundle alive until we return. The explain
  // block reports this pinned generation, not the live one — an EXPLAIN
  // that overlaps a reload describes the engine it actually ran on.
  const std::shared_ptr<const core::Engine> engine = SnapshotEngine();
  const uint64_t pinned_generation = generation();

  // Router generation fence: the pinned statistics in gstats were summed
  // from /shard/stats responses at a specific generation; if a reload
  // landed since, scoring would silently mix new postings with old global
  // statistics. 409 tells the router to re-collect and retry.
  if (const std::string* text = get("expect_gen")) {
    StatusOr<size_t> expected = core::ParseCount(*text, "expect_gen");
    if (!expected.ok()) {
      response.status_code = HttpCodeForStatus(expected.status());
      response.body = ErrorBody(expected.status());
      return response;
    }
    if (*expected != pinned_generation) {
      stats_.generation_conflicts.fetch_add(1, std::memory_order_relaxed);
      response.status_code = 409;
      response.body = "{\"error\":\"generation_conflict\",\"expected\":" +
                      std::to_string(*expected) + ",\"generation\":" +
                      std::to_string(pinned_generation) + "}";
      stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
      return response;
    }
  }

  StatusOr<core::ResolvedRequest> resolved =
      core::ResolveRequest(*engine, params);
  if (!resolved.ok()) {
    response.status_code = HttpCodeForStatus(resolved.status());
    response.body = ErrorBody(resolved.status());
    stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
    return response;
  }
  common::QueryTrace trace;  // outlives the engine call
  if (explain) {
    resolved->options.trace = &trace;
  }

  // Pinned global statistics from the router (phase 2 of the stats
  // exchange). Installed as a per-request overlay; execution is forced
  // monolithic because the per-request overlay is rejected on the
  // segmented fan-out path (scores are identical either way).
  index::StatsOverlay pinned_overlay;  // outlives the engine call
  if (const std::string* text = get("gstats")) {
    StatusOr<PinnedStats> pinned = DecodePinnedStats(*text);
    if (!pinned.ok()) {
      response.status_code = HttpCodeForStatus(pinned.status());
      response.body = ErrorBody(pinned.status());
      stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
      return response;
    }
    pinned_overlay = ToOverlay(*pinned);
    resolved->options.stats_overlay = &pinned_overlay;
    resolved->options.use_segmented = false;
  }

  if (options_.test_search_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.test_search_delay_ms));
  }

  // ---- deadline: queued time counts against the budget ----
  const auto elapsed_ms = [&] {
    return (queued_micros + MicrosSince(handle_start)) / 1000;
  };
  if (elapsed_ms() >= deadline_ms) {
    response.status_code = 504;
    response.retry_after_s = options_.retry_after_s;
    response.body = ErrorBody(Status::FailedPrecondition(
        "deadline of " + std::to_string(deadline_ms) +
        "ms elapsed before execution"));
    stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
    return response;
  }

  const Clock::time_point engine_start = Clock::now();
  StatusOr<core::SearchResult> result = engine->SearchQuery(
      resolved->query, *resolved->scheme, resolved->options);
  const uint64_t engine_micros = MicrosSince(engine_start);

  stats_.scheme_counts.Record(params.scheme);
  if (result.ok() && result->used_block_max_pruning) {
    stats_.pruned_searches.fetch_add(1, std::memory_order_relaxed);
    stats_.topk_blocks_skipped.fetch_add(
        result->exec_stats.topk_blocks_skipped, std::memory_order_relaxed);
  }
  if (result.ok()) {
    // Per-rule fire counts, slot-aligned with the rewrite-rule registry
    // (exported as graft_rewrite_rule_fired_total{rule=...}).
    const size_t rules = std::min(core::RewriteRuleRegistry::Global().All().size(),
                                  ServerStats::kMaxRules);
    for (size_t i = 0; i < rules; ++i) {
      const uint64_t fired = result->exec_stats.rule_fired[i];
      if (fired != 0) {
        stats_.rule_fired[i].fetch_add(fired, std::memory_order_relaxed);
      }
    }
  }
  // Slow-query log: threshold on the full latency the client saw
  // (queue + handling), which is what a tail-latency alert fires on.
  if (options_.slow_query_ms > 0 &&
      queued_micros + MicrosSince(handle_start) >=
          options_.slow_query_ms * 1000) {
    stats_.slow_queries.fetch_add(1, std::memory_order_relaxed);
    std::string counters;
    if (result.ok()) {
      counters = " docs_visited=" +
                 std::to_string(result->exec_stats.docs_visited) +
                 " rows_built=" +
                 std::to_string(result->exec_stats.rows_built) +
                 " gallop_probes=" +
                 std::to_string(result->exec_stats.gallop_probes);
    }
    std::fprintf(stderr,
                 "[slow-query] total=%.1fms queue=%.1fms engine=%.1fms "
                 "scheme=%s%s query=%s\n",
                 static_cast<double>(queued_micros +
                                     MicrosSince(handle_start)) /
                     1000.0,
                 static_cast<double>(queued_micros) / 1000.0,
                 static_cast<double>(engine_micros) / 1000.0,
                 params.scheme.c_str(), counters.c_str(),
                 params.query.c_str());
  }
  if (!result.ok()) {
    response.status_code = HttpCodeForStatus(result.status());
    response.body = ErrorBody(result.status());
    stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
    return response;
  }
  if (elapsed_ms() >= deadline_ms) {
    // The engine is not preemptible; the honest answer is a late 504.
    response.status_code = 504;
    response.retry_after_s = options_.retry_after_s;
    response.body = ErrorBody(Status::FailedPrecondition(
        "deadline of " + std::to_string(deadline_ms) +
        "ms exceeded during execution"));
    stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
    return response;
  }

  // ---- 200 body ----
  std::string body = "{\"query\":\"";
  JsonAppendEscaped(&body, params.query);
  body += "\",\"scheme\":\"";
  JsonAppendEscaped(&body, params.scheme);
  body += "\",\"k\":";
  body += std::to_string(params.top_k);
  body += ",\"segments_searched\":";
  body += std::to_string(result->segments_searched);
  body += ",\"used_rank_processing\":";
  body += result->used_rank_processing ? "true" : "false";
  body += ",\"used_block_max_pruning\":";
  body += result->used_block_max_pruning ? "true" : "false";
  body += ",\"optimizations\":\"";
  JsonAppendEscaped(&body, result->applied_optimizations);
  body += "\",\"timings\":{";
  AppendMsField(&body, "queue_ms", static_cast<double>(queued_micros));
  body += ",";
  AppendMsField(&body, "engine_ms", static_cast<double>(engine_micros));
  body += ",";
  AppendMsField(&body, "total_ms",
                static_cast<double>(queued_micros + MicrosSince(handle_start)));
  body += "},\"exec\":{\"docs_visited\":";
  body += std::to_string(result->exec_stats.docs_visited);
  body += ",\"rows_built\":";
  body += std::to_string(result->exec_stats.rows_built);
  body += ",\"positions_scanned\":";
  body += std::to_string(result->exec_stats.positions_scanned);
  body += "},";
  if (explain) {
    AppendExplainBlock(&body, *result, trace, pinned_generation);
    body += ",";
  }
  body += FormatResultsFragment(result->results);
  body += "}";
  response.body = std::move(body);
  stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
  return response;
}

}  // namespace graft::server
