#include "server/server_stats.h"

#include <algorithm>
#include <cstdio>

#include "core/rewrite_rules.h"
#include "exec/operators.h"
#include "sa/scoring_scheme.h"
#include "server/http.h"

namespace graft::server {

// One server-side slot per exec-side slot: StampRuleCounters writes by
// registry index, so the two arrays must stay width-matched.
static_assert(ServerStats::kMaxRules == exec::ExecStats::kMaxRules,
              "per-rule counter widths diverged");

namespace {

// Bucket index: number of significant bits in `micros` (0 -> bucket 0).
size_t BucketFor(uint64_t micros) {
  size_t bits = 0;
  while (micros != 0 && bits + 1 < LatencyHistogram::kBuckets) {
    micros >>= 1;
    ++bits;
  }
  return bits;
}

void AppendMs(std::string* out, double micros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", micros / 1000.0);
  *out += buf;
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen && !max_micros_.compare_exchange_weak(
                              seen, micros, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::PercentileMicros(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk buckets.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * total + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      // Interpolate inside [lo, hi): bucket i holds values with i
      // significant bits, i.e. [2^(i-1), 2^i) for i >= 1 and {0} for 0.
      const double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      const double hi = static_cast<double>(uint64_t{1} << i);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
      // The interpolated position can overshoot the largest sample actually
      // recorded (bucket upper bounds are powers of two) — clamp so
      // reported percentiles never exceed the true max.
      const double max_seen =
          static_cast<double>(max_micros_.load(std::memory_order_relaxed));
      return std::min(lo + (hi - lo) * frac, max_seen);
    }
    seen += counts[i];
  }
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed));
}

std::string LatencyHistogram::ToJson() const {
  std::string out = "{\"count\":";
  out += std::to_string(count());
  const uint64_t n = count();
  out += ",\"mean_ms\":";
  AppendMs(&out, n == 0 ? 0.0
                        : static_cast<double>(
                              sum_micros_.load(std::memory_order_relaxed)) /
                              static_cast<double>(n));
  out += ",\"p50_ms\":";
  AppendMs(&out, PercentileMicros(0.50));
  out += ",\"p95_ms\":";
  AppendMs(&out, PercentileMicros(0.95));
  out += ",\"p99_ms\":";
  AppendMs(&out, PercentileMicros(0.99));
  out += ",\"max_ms\":";
  AppendMs(&out,
           static_cast<double>(max_micros_.load(std::memory_order_relaxed)));
  out += "}";
  return out;
}

SchemeCounters::SchemeCounters() {
  for (const sa::ScoringScheme* scheme : sa::SchemeRegistry::Global().All()) {
    names_.emplace_back(scheme->name());
  }
  names_.emplace_back("(other)");
  counts_ = std::vector<std::atomic<uint64_t>>(names_.size());
}

void SchemeCounters::Record(std::string_view scheme_name) {
  for (size_t i = 0; i + 1 < names_.size(); ++i) {
    if (names_[i] == scheme_name) {
      counts_[i].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  counts_.back().fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> SchemeCounters::NonZero()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (size_t i = 0; i < names_.size(); ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      out.emplace_back(names_[i], n);
    }
  }
  return out;
}

std::string SchemeCounters::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < names_.size(); ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    JsonAppendEscaped(&out, names_[i]);
    out += "\":";
    out += std::to_string(n);
  }
  out += "}";
  return out;
}

void ServerStats::RecordResponseCode(int status_code) {
  if (status_code >= 200 && status_code < 300) {
    responses_ok.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code >= 400 && status_code < 500) {
    client_errors.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code == 503) {
    rejected_overload.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code == 504) {
    deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  } else {
    server_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string ServerStats::ToJson() const {
  std::string out = "{\"requests_total\":";
  out += std::to_string(requests_total.load(std::memory_order_relaxed));
  out += ",\"responses_ok\":";
  out += std::to_string(responses_ok.load(std::memory_order_relaxed));
  out += ",\"client_errors\":";
  out += std::to_string(client_errors.load(std::memory_order_relaxed));
  out += ",\"server_errors\":";
  out += std::to_string(server_errors.load(std::memory_order_relaxed));
  out += ",\"rejected_overload\":";
  out += std::to_string(rejected_overload.load(std::memory_order_relaxed));
  out += ",\"deadline_exceeded\":";
  out += std::to_string(deadline_exceeded.load(std::memory_order_relaxed));
  out += ",\"malformed_requests\":";
  out += std::to_string(malformed_requests.load(std::memory_order_relaxed));
  out += ",\"reloads_ok\":";
  out += std::to_string(reloads_ok.load(std::memory_order_relaxed));
  out += ",\"reloads_failed\":";
  out += std::to_string(reloads_failed.load(std::memory_order_relaxed));
  out += ",\"slow_queries\":";
  out += std::to_string(slow_queries.load(std::memory_order_relaxed));
  out += ",\"generation_conflicts\":";
  out += std::to_string(generation_conflicts.load(std::memory_order_relaxed));
  out += ",\"shard_stats_requests\":";
  out += std::to_string(shard_stats_requests.load(std::memory_order_relaxed));
  out += ",\"pruned_searches\":";
  out += std::to_string(pruned_searches.load(std::memory_order_relaxed));
  out += ",\"topk_blocks_skipped\":";
  out += std::to_string(topk_blocks_skipped.load(std::memory_order_relaxed));
  out += ",\"rule_fired\":{";
  {
    const auto& rules = core::RewriteRuleRegistry::Global().All();
    bool first = true;
    for (size_t i = 0; i < rules.size() && i < kMaxRules; ++i) {
      const uint64_t n = rule_fired[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + rules[i].id + "\":" + std::to_string(n);
    }
  }
  out += "}";
  out += ",\"search_latency\":";
  out += search_latency.ToJson();
  out += ",\"scheme_counts\":";
  out += scheme_counts.ToJson();
  out += "}";
  return out;
}

namespace {

void AppendMetric(std::string* out, const char* name, const char* help,
                  const char* type, uint64_t value) {
  *out += "# HELP ";
  *out += name;
  *out += " ";
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " ";
  *out += type;
  *out += "\n";
  *out += name;
  *out += " ";
  *out += std::to_string(value);
  *out += "\n";
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

}  // namespace

std::string ServerStats::ToPrometheus() const {
  std::string out;
  AppendMetric(&out, "graft_requests_total",
               "HTTP connections accepted.", "counter",
               requests_total.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_responses_ok_total", "2xx responses.", "counter",
               responses_ok.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_client_errors_total", "4xx responses.", "counter",
               client_errors.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_server_errors_total",
               "5xx responses other than 503/504.", "counter",
               server_errors.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_rejected_overload_total",
               "503 admission rejections.", "counter",
               rejected_overload.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_deadline_exceeded_total", "504 responses.",
               "counter",
               deadline_exceeded.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_malformed_requests_total",
               "Unparsable HTTP requests.", "counter",
               malformed_requests.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_reloads_ok_total", "Successful hot reloads.",
               "counter", reloads_ok.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_reloads_failed_total", "Failed hot reloads.",
               "counter", reloads_failed.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_slow_queries_total",
               "Searches over the slow-query threshold.", "counter",
               slow_queries.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_generation_conflicts_total",
               "409s: router expect_gen stale after a reload.", "counter",
               generation_conflicts.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_shard_stats_requests_total",
               "/shard/stats requests (router stats exchange phase 1).",
               "counter",
               shard_stats_requests.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_pruned_searches_total",
               "Searches served by the block-max pruned top-k operator.",
               "counter", pruned_searches.load(std::memory_order_relaxed));
  AppendMetric(&out, "graft_topk_blocks_skipped_total",
               "Posting blocks skipped via block-max ceilings.", "counter",
               topk_blocks_skipped.load(std::memory_order_relaxed));

  {
    const auto& rules = core::RewriteRuleRegistry::Global().All();
    bool any = false;
    for (size_t i = 0; i < rules.size() && i < kMaxRules; ++i) {
      any = any || rule_fired[i].load(std::memory_order_relaxed) != 0;
    }
    if (any) {
      out +=
          "# HELP graft_rewrite_rule_fired_total Rewrite-rule applications "
          "per catalog rule across served searches.\n"
          "# TYPE graft_rewrite_rule_fired_total counter\n";
      for (size_t i = 0; i < rules.size() && i < kMaxRules; ++i) {
        const uint64_t n = rule_fired[i].load(std::memory_order_relaxed);
        if (n == 0) continue;
        // Rule ids are stable lowercase identifiers — no label escaping
        // needed beyond quoting.
        out += "graft_rewrite_rule_fired_total{rule=\"" + rules[i].id +
               "\"} " + std::to_string(n) + "\n";
      }
    }
  }

  out +=
      "# HELP graft_search_latency_microseconds /search latency "
      "(queued + handled).\n"
      "# TYPE graft_search_latency_microseconds summary\n";
  const struct {
    const char* label;
    double q;
  } quantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& quantile : quantiles) {
    out += "graft_search_latency_microseconds{quantile=\"";
    out += quantile.label;
    out += "\"} ";
    AppendDouble(&out, search_latency.PercentileMicros(quantile.q));
    out += "\n";
  }
  out += "graft_search_latency_microseconds_sum ";
  out += std::to_string(search_latency.sum_micros());
  out += "\ngraft_search_latency_microseconds_count ";
  out += std::to_string(search_latency.count());
  out += "\n";

  const auto schemes = scheme_counts.NonZero();
  if (!schemes.empty()) {
    out +=
        "# HELP graft_search_by_scheme_total /search requests per scoring "
        "scheme.\n# TYPE graft_search_by_scheme_total counter\n";
    for (const auto& [name, n] : schemes) {
      // Scheme names are registry identifiers ([A-Za-z0-9_-]) — no label
      // escaping needed beyond quoting.
      out += "graft_search_by_scheme_total{scheme=\"" + name + "\"} " +
             std::to_string(n) + "\n";
    }
  }
  return out;
}

}  // namespace graft::server
