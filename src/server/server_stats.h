// Cumulative request statistics for the search service.
//
// Everything on the hot path is a relaxed atomic: handlers on different
// pool workers record concurrently with readers rendering /stats, and no
// counter needs to be consistent with any other — /stats is an
// observability snapshot, not an invariant. Latencies go into a
// log-bucketed histogram (one power-of-two bucket per microsecond bit
// width), whose percentile read-out interpolates within the winning
// bucket; error vs. true value is bounded by the bucket width (< 2x),
// which is plenty for p50/p95/p99 dashboards.
//
// Per-scheme counts use a fixed slot table keyed by the global scheme
// registry (schemes register at startup, before the server accepts
// traffic), so recording a scheme hit is one relaxed fetch_add, no lock.

#ifndef GRAFT_SERVER_SERVER_STATS_H_
#define GRAFT_SERVER_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graft::server {

// Log-bucketed latency histogram over microseconds. Thread-safe.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // covers up to ~2^39 us (~6 days)

  void Record(uint64_t micros);

  // Returns the approximate q-quantile (q in [0,1]) in microseconds, by
  // linear interpolation inside the bucket containing the target rank.
  // 0 when empty.
  double PercentileMicros(double q) const;

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  // Renders {"count":n,"p50_ms":...,"p95_ms":...,"p99_ms":...,"max_ms":...}
  std::string ToJson() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

// One slot per registered scoring scheme plus a catch-all.
class SchemeCounters {
 public:
  SchemeCounters();

  void Record(std::string_view scheme_name);

  // Renders {"MeanSum":12,...} (only non-zero slots).
  std::string ToJson() const;

  // Non-zero (name, count) slots — the /metrics label values.
  std::vector<std::pair<std::string, uint64_t>> NonZero() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::atomic<uint64_t>> counts_;
};

// The outcome counters are disjoint: responses_ok + client_errors +
// server_errors + rejected_overload + deadline_exceeded == requests_total
// (once all in-flight requests have drained).
struct ServerStats {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> responses_ok{0};          // 2xx
  std::atomic<uint64_t> client_errors{0};         // 4xx
  std::atomic<uint64_t> server_errors{0};         // 5xx except 503/504
  std::atomic<uint64_t> rejected_overload{0};     // 503 (admission/shutdown)
  std::atomic<uint64_t> deadline_exceeded{0};     // 504
  std::atomic<uint64_t> malformed_requests{0};    // unparsable HTTP (also 4xx)
  // Hot-reload outcomes (/admin/reload + SIGHUP); not part of the
  // request-outcome identity above.
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_failed{0};
  // /search responses whose total latency crossed the configured
  // slow-query threshold (0 while the slow-query log is disabled).
  std::atomic<uint64_t> slow_queries{0};
  // 409s answered to a router whose expect_gen no longer matches this
  // server's engine generation (a reload landed between the router's stats
  // collection and this search). Subset of client_errors — the outcome
  // identity above is untouched; this counter exists so a dashboard can
  // tell "router racing reloads" apart from plain bad requests.
  std::atomic<uint64_t> generation_conflicts{0};
  // /shard/stats requests served (phase 1 of the router's two-phase
  // stats exchange).
  std::atomic<uint64_t> shard_stats_requests{0};
  // Block-max top-k pruning on the search path: searches whose plan ran
  // the pruned operator, and the cumulative posting blocks it skipped.
  // Both stay 0 when the gate blocks pruning (scheme, query shape, v3
  // index) — a dashboard on these shows whether pruning is earning rent.
  std::atomic<uint64_t> pruned_searches{0};
  std::atomic<uint64_t> topk_blocks_skipped{0};
  // Rewrite-rule fire counts, slot-indexed by the declarative catalog
  // (core/rewrite_rules.h registry order); exported as
  // graft_rewrite_rule_fired_total{rule="<id>"}. Sized to match
  // exec::ExecStats::kMaxRules (static_assert in the .cc).
  static constexpr size_t kMaxRules = 16;
  std::atomic<uint64_t> rule_fired[kMaxRules] = {};
  LatencyHistogram search_latency;                // /search only, all codes
  SchemeCounters scheme_counts;

  // Classifies a response code into exactly one outcome counter:
  // 2xx -> responses_ok, 4xx -> client_errors, 503 -> rejected_overload,
  // 504 -> deadline_exceeded, other 5xx -> server_errors.
  void RecordResponseCode(int status_code);

  // Full /stats JSON document.
  std::string ToJson() const;

  // Prometheus text exposition (version 0.0.4) of every counter above:
  // graft_-prefixed counters, a summary for search latency (quantile
  // labels + _sum/_count), and one graft_search_by_scheme_total sample
  // per scheme label. The /metrics handler appends its own gauges
  // (in-flight, generation, uptime) after this.
  std::string ToPrometheus() const;
};

}  // namespace graft::server

#endif  // GRAFT_SERVER_SERVER_STATS_H_
