// The wire form of GRAFT's distributed score-consistency contract.
//
// A router shard scores bit-identically to a single-process run iff it
// scores with the whole corpus' collection statistics (scores depend only
// on per-document match rows plus collection statistics — DESIGN.md and
// src/index/segmented_index.h state the invariant for the in-process
// case). PinnedStats is the collection-statistics snapshot the router
// broadcasts with every fanned-out /search: corpus doc count, corpus word
// count, and the summed df/cf for exactly the query's terms. The shard
// installs it as a per-request index::StatsOverlay
// (SearchOptions::stats_overlay), so every collection-level statistic the
// scheme reads resolves against the pinned values.
//
// Per-query term stats (not a full-vocabulary broadcast) keep the encoded
// form small enough for a GET request head (kMaxRequestHeadBytes = 16 KiB)
// and make the exchange O(query terms), like the DFS phase of
// distributed Lucene/ES. Terms a shard has never seen are fine: they
// resolve to kInvalidTerm locally and contribute empty scans, exactly as
// in a monolithic index that lacks the term.
//
// Encoding (one URL parameter value; the HTTP layer percent-encodes it):
//
//   <doc_count>;<total_words>[;<term>:<df>:<cf>]...
//
// '%', ':' and ';' inside a term are %-escaped by this codec itself so the
// format stays unambiguous for any token text.

#ifndef GRAFT_SERVER_PINNED_STATS_H_
#define GRAFT_SERVER_PINNED_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/stats.h"

namespace graft::server {

struct PinnedTermStats {
  std::string term;
  uint64_t doc_freq = 0;
  uint64_t collection_freq = 0;
};

struct PinnedStats {
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  std::vector<PinnedTermStats> terms;
};

// Serializes to the ';'-separated form above. Deterministic: terms are
// emitted in the order given.
std::string EncodePinnedStats(const PinnedStats& stats);

// Parses the encoded form. Every malformed input (bad escape, missing
// field, non-numeric count, trailing garbage) is InvalidArgument — a shard
// maps it to 400, never trusts it partially.
StatusOr<PinnedStats> DecodePinnedStats(std::string_view encoded);

// Expands into the string-keyed overlay the engine consumes:
// SetCollectionSize + SetTotalWords + per-term SetDocFreq/SetCollectionFreq.
index::StatsOverlay ToOverlay(const PinnedStats& stats);

}  // namespace graft::server

#endif  // GRAFT_SERVER_PINNED_STATS_H_
