#include "text/tokenizer.h"

#include <cctype>

namespace graft::text {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

}  // namespace graft::text
