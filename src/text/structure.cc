#include "text/structure.h"

#include <cctype>

#include "mcalc/predicates.h"

namespace graft::text {

StructuredDocument TokenizeStructured(std::string_view text) {
  StructuredDocument doc;
  Offset paragraph = 0;
  Offset sentence = 0;
  Offset word = 0;
  bool sentence_used = false;
  bool paragraph_used = false;
  std::string current;

  const auto end_sentence = [&] {
    if (sentence_used) {
      ++sentence;
      ++doc.sentence_count;
      word = 0;
      sentence_used = false;
      if (sentence >= kSentencesPerParagraph) {
        // Paragraph overflow: split.
        ++paragraph;
        sentence = 0;
      }
    }
  };
  const auto end_paragraph = [&] {
    end_sentence();
    if (paragraph_used) {
      ++paragraph;
      ++doc.paragraph_count;
      sentence = 0;
      paragraph_used = false;
    }
  };
  const auto flush_token = [&] {
    if (current.empty()) return;
    if (word >= kSentenceStride) {
      end_sentence();  // sentence overflow: split
      sentence_used = true;
    }
    doc.tokens.push_back(PositionedToken{
        std::move(current),
        paragraph * kParagraphStride + sentence * kSentenceStride + word});
    current.clear();
    ++word;
    sentence_used = true;
    paragraph_used = true;
  };

  int newline_run = 0;
  for (const char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
      newline_run = 0;
      continue;
    }
    flush_token();
    if (c == '.' || c == '!' || c == '?') {
      end_sentence();
    } else if (c == '\n') {
      if (++newline_run >= 2) {
        end_paragraph();
        newline_run = 0;
      }
    }
    if (c != '\n') {
      newline_run = 0;
    }
  }
  flush_token();
  if (sentence_used) ++doc.sentence_count;
  if (paragraph_used) ++doc.paragraph_count;
  return doc;
}

Status RegisterStructuralPredicates() {
  auto& registry = mcalc::PredicateRegistry::Global();
  if (registry.Lookup("SAMESENTENCE") != nullptr) {
    return Status::Ok();
  }
  mcalc::PredicateDef same_sentence;
  same_sentence.name = "SAMESENTENCE";
  same_sentence.min_vars = 2;
  same_sentence.max_vars = -1;
  same_sentence.num_params = 0;
  same_sentence.evaluator = [](std::span<const Offset> positions,
                               std::span<const int64_t>) {
    for (size_t i = 1; i < positions.size(); ++i) {
      if (SentenceOf(positions[i]) != SentenceOf(positions[0])) {
        return false;
      }
    }
    return true;
  };
  GRAFT_RETURN_IF_ERROR(registry.Register(same_sentence));

  mcalc::PredicateDef same_paragraph;
  same_paragraph.name = "SAMEPARAGRAPH";
  same_paragraph.min_vars = 2;
  same_paragraph.max_vars = -1;
  same_paragraph.num_params = 0;
  same_paragraph.evaluator = [](std::span<const Offset> positions,
                                std::span<const int64_t>) {
    for (size_t i = 1; i < positions.size(); ++i) {
      if (ParagraphOf(positions[i]) != ParagraphOf(positions[0])) {
        return false;
      }
    }
    return true;
  };
  return registry.Register(same_paragraph);
}

}  // namespace graft::text
