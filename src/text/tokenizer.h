// Tokenization of raw text into the word sequences that the full-text index
// stores. The document model for full-text search is a *sequence* of words
// (offsets matter), so tokenization fixes the offsets once and for all.

#ifndef GRAFT_TEXT_TOKENIZER_H_
#define GRAFT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace graft::text {

// Splits `text` into lowercase alphanumeric tokens. Any run of characters
// that are not ASCII letters or digits separates tokens. Offsets in the
// returned vector are the term positions used throughout GRAFT: token i has
// offset i.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace graft::text

#endif  // GRAFT_TEXT_TOKENIZER_H_
