// Structured tokenization: sentence- and paragraph-aware term positions.
//
// The paper (Section 8): GRAFT "can be easily extended to support such
// predicates as SAMESENTENCE or SAMEPARAGRAPH, assuming the index supports
// sentence and paragraph offsets." This module provides those offsets
// without changing the index format: positions are composite,
//
//   offset = paragraph · kParagraphStride + sentence · kSentenceStride + i
//
// where i is the word's index within its sentence. Properties:
//
//   * adjacency within a sentence is still distance 1, so PHRASE /
//     DISTANCE work unchanged — and phrases can no longer falsely match
//     across a sentence boundary (crossing a boundary jumps the offset);
//   * SAMESENTENCE(p̄) ⇔ ⌊p/kSentenceStride⌋ equal for all p̄;
//   * SAMEPARAGRAPH(p̄) ⇔ ⌊p/kParagraphStride⌋ equal.
//
// This is the positional-gap idiom production engines use (Lucene's
// position-increment gaps), made exact by fixed strides. Limits: at most
// kSentenceStride words per sentence and kParagraphStride/kSentenceStride
// sentences per paragraph; longer ones are split.
//
// The SAMESENTENCE and SAMEPARAGRAPH predicates are registered by
// RegisterStructuralPredicates() (idempotent).

#ifndef GRAFT_TEXT_STRUCTURE_H_
#define GRAFT_TEXT_STRUCTURE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/types.h"

namespace graft::text {

inline constexpr Offset kSentenceStride = 128;
inline constexpr Offset kSentencesPerParagraph = 256;
inline constexpr Offset kParagraphStride =
    kSentenceStride * kSentencesPerParagraph;

struct PositionedToken {
  std::string text;
  Offset offset;
};

struct StructuredDocument {
  std::vector<PositionedToken> tokens;
  uint32_t sentence_count = 0;
  uint32_t paragraph_count = 0;
};

// Splits `text` into paragraphs (blank lines), sentences ('.', '!', '?'),
// and lowercase alphanumeric tokens with composite offsets.
StructuredDocument TokenizeStructured(std::string_view text);

// Registers SAMESENTENCE and SAMEPARAGRAPH in the global predicate
// registry. Safe to call repeatedly.
Status RegisterStructuralPredicates();

// Sentence / paragraph ids of a composite offset.
inline Offset SentenceOf(Offset offset) { return offset / kSentenceStride; }
inline Offset ParagraphOf(Offset offset) {
  return offset / kParagraphStride;
}

}  // namespace graft::text

#endif  // GRAFT_TEXT_STRUCTURE_H_
