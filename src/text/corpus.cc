#include "text/corpus.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace graft::text {

namespace {

// Sixty-ish short word shapes so filler tokens look like words rather than
// "w123" (useful when eyeballing example output); combined with a rank
// suffix for uniqueness.
std::string FillerWord(uint64_t rank) {
  static constexpr const char* kStems[] = {
      "the",  "of",    "and",   "in",    "to",    "a",     "is",   "was",
      "for",  "as",    "on",    "with",  "by",    "that",  "it",   "from",
      "his",  "at",    "are",   "were",  "be",    "an",    "this", "which",
      "or",   "first", "new",   "one",   "has",   "their", "city", "state",
      "year", "time",  "world", "used",  "its",   "also",  "may",  "other",
      "more", "most",  "some",  "can",   "had",   "been",  "two",  "when",
      "who",  "after", "known", "made",  "over",  "where", "many", "years",
      "into", "about", "such",  "under", "these", "early", "part", "during"};
  constexpr uint64_t kNumStems = sizeof(kStems) / sizeof(kStems[0]);
  if (rank < kNumStems) {
    return kStems[rank];
  }
  return std::string(kStems[rank % kNumStems]) + std::to_string(rank);
}

}  // namespace

CorpusConfig WikipediaLikeConfig(uint64_t num_docs, uint64_t seed) {
  CorpusConfig config;
  config.num_docs = num_docs;
  config.seed = seed;

  // Independent keyword plants. Fractions chosen to mirror the qualitative
  // frequency classes in the paper's Figure 1 (e.g. 'free' is ~120x more
  // common than 'foss' or 'emulator'; 'software' and 'windows' are
  // mid-frequency).
  // Mean within-document occurrence counts mirror Wikipedia's behaviour:
  // frequent words repeat several times in the documents that contain them
  // (Figure 1's d_w has 'software' and 'windows' four times each in a
  // 207-word abstract).
  config.terms = {
      {"free", 0.065, 4.0},        {"software", 0.016, 3.6},
      {"windows", 0.009, 3.8},     {"emulator", 0.0006, 1.4},
      {"foss", 0.0005, 1.1},       {"service", 0.030, 2.8},
      {"internet", 0.012, 2.4},    {"wireless", 0.004, 1.8},
      {"san", 0.012, 2.8},         {"francisco", 0.007, 2.4},
      {"fault", 0.0035, 2.0},      {"line", 0.020, 2.6},
      {"dinosaur", 0.0012, 2.2},   {"species", 0.011, 3.2},
      {"list", 0.025, 2.2},        {"image", 0.018, 2.8},
      {"picture", 0.009, 1.8},     {"drawing", 0.004, 1.4},
      {"illustration", 0.002, 1.3},{"orange", 0.004, 1.6},
      {"county", 0.016, 2.4},      {"convention", 0.003, 1.6},
      {"center", 0.014, 2.0},      {"orlando", 0.0015, 1.8},
      {"arizona", 0.003, 2.0},     {"fishing", 0.0025, 1.8},
      {"hunting", 0.0022, 1.8},    {"rules", 0.007, 2.0},
      {"regulations", 0.003, 1.6}, {"rick", 0.0015, 1.4},
      {"warren", 0.0015, 1.4},     {"obama", 0.0025, 2.4},
      {"inauguration", 0.0006, 1.5}, {"controversy", 0.0035, 1.6},
      {"invocation", 0.0004, 1.2},
  };

  // Phrase plants give the PHRASE/DISTANCE predicates real matches.
  config.phrases = {
      {{"san", "francisco"}, 0.005},
      {{"fault", "line"}, 0.0012},
      {{"free", "software"}, 0.0035},
      {{"orange", "county", "convention", "center"}, 0.0004},
      {{"rick", "warren"}, 0.0008},
  };

  // Topic bundles guarantee conjunctive and windowed matches.
  config.bundles = {
      // Q4/Q7: bay-area geology articles.
      {{"san", "francisco", "fault", "line"},
       {{"san", "francisco"}, {"fault", "line"}},
       0.0012,
       60},
      // Q5: paleontology list pages with figure markup words.
      {{"dinosaur", "species", "list", "image", "picture"}, {}, 0.0008, 80},
      // Q6: Orlando venue pages.
      {{"orlando"}, {{"orange", "county", "convention", "center"}}, 0.0003, 50},
      // Q8: software emulation articles (the Wine-article shape).
      {{"windows", "emulator", "foss"}, {{"free", "software"}}, 0.0005, 45},
      // Q9: municipal broadband articles.
      {{"free", "wireless", "internet", "service"}, {}, 0.0010, 12},
      // Q10: state game-and-fish regulation pages.
      {{"arizona", "fishing", "hunting", "rules", "regulations"}, {}, 0.0006, 18},
      // Q11: 2009 inauguration coverage.
      {{"obama", "inauguration", "controversy", "invocation"},
       {{"rick", "warren"}},
       0.0004,
       30},
  };

  return config;
}

CorpusGenerator::CorpusGenerator(CorpusConfig config)
    : config_(std::move(config)) {
  filler_words_.reserve(config_.filler_vocab);
  for (uint64_t rank = 0; rank < config_.filler_vocab; ++rank) {
    filler_words_.push_back(FillerWord(rank));
  }
}

void CorpusGenerator::Place(std::vector<std::string_view>* doc,
                            uint32_t offset, std::string_view word) {
  if (offset < doc->size()) {
    (*doc)[offset] = word;
  }
}

void CorpusGenerator::Generate(const Sink& sink) {
  Rng rng(config_.seed);
  ZipfSampler zipf(config_.filler_vocab, config_.zipf_skew,
                   config_.seed ^ 0x5eedf00dULL);
  total_words_ = 0;

  std::vector<std::string_view> doc;
  for (uint64_t doc_id = 0; doc_id < config_.num_docs; ++doc_id) {
    const uint32_t len = static_cast<uint32_t>(
        rng.NextInRange(config_.min_doc_len, config_.max_doc_len));
    doc.clear();
    doc.reserve(len);
    for (uint32_t i = 0; i < len; ++i) {
      doc.push_back(filler_words_[zipf.Next()]);
    }

    // Independent keyword plants.
    for (const PlantedTerm& term : config_.terms) {
      if (!rng.NextBool(term.doc_fraction)) {
        continue;
      }
      // Geometric-ish occurrence count with the configured mean.
      uint32_t occurrences = 1;
      const double p_more = 1.0 - 1.0 / std::max(1.0, term.mean_occurrences);
      while (occurrences < 64 && rng.NextBool(p_more)) {
        ++occurrences;
      }
      for (uint32_t i = 0; i < occurrences; ++i) {
        Place(&doc, static_cast<uint32_t>(rng.NextBounded(len)), term.word);
      }
    }

    // Phrase plants: consecutive words.
    for (const PlantedPhrase& phrase : config_.phrases) {
      if (!rng.NextBool(phrase.doc_fraction)) {
        continue;
      }
      if (phrase.words.size() > len) {
        continue;
      }
      const uint32_t start = static_cast<uint32_t>(
          rng.NextBounded(len - phrase.words.size() + 1));
      for (size_t i = 0; i < phrase.words.size(); ++i) {
        Place(&doc, start + static_cast<uint32_t>(i), phrase.words[i]);
      }
    }

    // Topic bundles: all elements within a span.
    for (const TopicBundle& bundle : config_.bundles) {
      if (!rng.NextBool(bundle.doc_fraction)) {
        continue;
      }
      const uint32_t span = std::min<uint32_t>(bundle.span, len);
      const uint32_t base =
          span < len ? static_cast<uint32_t>(rng.NextBounded(len - span)) : 0;
      for (const std::string& term : bundle.terms) {
        Place(&doc, base + static_cast<uint32_t>(rng.NextBounded(span)), term);
      }
      for (const std::vector<std::string>& phrase : bundle.phrases) {
        if (phrase.size() > span) {
          continue;
        }
        const uint32_t start =
            base + static_cast<uint32_t>(
                       rng.NextBounded(span - phrase.size() + 1));
        for (size_t i = 0; i < phrase.size(); ++i) {
          Place(&doc, start + static_cast<uint32_t>(i), phrase[i]);
        }
      }
    }

    total_words_ += doc.size();
    sink(doc_id, doc);
  }
}

InMemoryCorpus GenerateInMemory(const CorpusConfig& config) {
  InMemoryCorpus corpus;
  corpus.docs.reserve(config.num_docs);
  CorpusGenerator generator(config);
  generator.Generate([&corpus](uint64_t doc_id,
                               const std::vector<std::string_view>& tokens) {
    (void)doc_id;
    std::vector<std::string> copy;
    copy.reserve(tokens.size());
    for (std::string_view token : tokens) {
      copy.emplace_back(token);
    }
    corpus.docs.push_back(std::move(copy));
  });
  return corpus;
}

}  // namespace graft::text
