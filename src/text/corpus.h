// Synthetic Wikipedia-like corpus generation.
//
// The paper evaluates on a 2010 English Wikipedia snapshot (2.4B words, 5.2M
// documents). That snapshot is not available here, so we substitute a
// deterministic generator that reproduces the statistical features the
// paper's experiments actually depend on:
//
//   * Zipf-distributed filler vocabulary (posting-list length distribution),
//   * planted query keywords with configured document frequencies
//     (selectivity of index scans),
//   * planted phrases and topic bundles with bounded spans (selectivity of
//     DISTANCE / PROXIMITY / WINDOW predicates and join fan-out),
//   * per-term within-document occurrence counts (group sizes seen by the
//     alternate-elimination and eager-counting optimizations).
//
// All generation is reproducible from CorpusConfig::seed.

#ifndef GRAFT_TEXT_CORPUS_H_
#define GRAFT_TEXT_CORPUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

namespace graft::text {

// A keyword inserted into a fraction of documents independently of other
// planted content.
struct PlantedTerm {
  std::string word;
  // Fraction of documents containing the term at least once.
  double doc_fraction = 0.0;
  // Mean number of occurrences in a containing document (>= 1).
  double mean_occurrences = 1.0;
};

// A run of consecutive words inserted into a fraction of documents.
struct PlantedPhrase {
  std::vector<std::string> words;
  double doc_fraction = 0.0;
};

// A set of terms and phrases co-inserted, all within a window of
// `span` words, into a fraction of documents. Bundles guarantee that
// conjunctive and positional queries have matches.
struct TopicBundle {
  std::vector<std::string> terms;
  std::vector<std::vector<std::string>> phrases;
  double doc_fraction = 0.0;
  uint32_t span = 40;
};

struct CorpusConfig {
  uint64_t num_docs = 10000;
  // Document lengths are sampled uniformly in [min_doc_len, max_doc_len].
  uint32_t min_doc_len = 60;
  uint32_t max_doc_len = 400;
  uint64_t filler_vocab = 50000;
  double zipf_skew = 1.05;
  uint64_t seed = 20110612;  // SIGMOD'11 opening day.

  std::vector<PlantedTerm> terms;
  std::vector<PlantedPhrase> phrases;
  std::vector<TopicBundle> bundles;
};

// Returns a config whose planted vocabulary covers the paper's evaluation
// queries Q4-Q11 (san francisco fault line, dinosaur species, windows
// emulator foss, etc.) with document frequencies that produce the same
// qualitative plan shapes as the Wikipedia run: frequent "free"/"service",
// mid-frequency "software"/"windows", rare "foss"/"emulator", and topic
// bundles so positional predicates have matches. `num_docs` scales the
// collection; term fractions are scale-invariant.
CorpusConfig WikipediaLikeConfig(uint64_t num_docs, uint64_t seed = 20110612);

// Generates documents one at a time. Documents are emitted with consecutive
// ids starting at 0, as token sequences.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config);

  // Invokes `sink(doc_id, tokens)` for each document. The token vector is
  // reused between calls; the sink must not retain references.
  using Sink =
      std::function<void(uint64_t doc_id, const std::vector<std::string_view>& tokens)>;
  void Generate(const Sink& sink);

  // Total number of word occurrences across the last Generate() run.
  uint64_t total_words() const { return total_words_; }

 private:
  // Writes `word` at `offset`, replacing the filler token there.
  void Place(std::vector<std::string_view>* doc, uint32_t offset,
             std::string_view word);

  CorpusConfig config_;
  // Filler vocabulary, rank-ordered (rank 0 = most frequent).
  std::vector<std::string> filler_words_;
  uint64_t total_words_ = 0;
};

// Convenience: generates the whole corpus into memory. Intended for tests
// and examples, not for large benchmark corpora.
struct InMemoryCorpus {
  // doc id == index into `docs`.
  std::vector<std::vector<std::string>> docs;
};
InMemoryCorpus GenerateInMemory(const CorpusConfig& config);

}  // namespace graft::text

#endif  // GRAFT_TEXT_CORPUS_H_
