// The Scoring Algebra operator interface (Section 4.1).
//
// A scoring scheme implements the six SA operators:
//   α (Init)      scores one match-table cell (a term position or ∅),
//   ⊘ (Conj)      combines conjuncted scores (same row, ∧ subexpression),
//   ⊚ (Disj)      combines disjuncted scores (same row, ∨ subexpression),
//   ⊕ (Alt)       combines alternate scores (same column),
//   ⊗ (Scale)     folds k equal scores in O(1) (only meaningful when the
//                 scheme declares alt_multiplies),
//   ω (Finalize)  collapses the internal score to the document's float.
//
// Schemes are stateless and thread-compatible; all statistics arrive
// through the context structs, which the engine populates from the index
// (optionally through a StatsOverlay).

#ifndef GRAFT_SA_SCORING_SCHEME_H_
#define GRAFT_SA_SCORING_SCHEME_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "index/types.h"
#include "sa/internal_score.h"
#include "sa/properties.h"

namespace graft::sa {

// Per-document statistics available to α and ω (the paper's d argument).
struct DocContext {
  DocId doc = kInvalidDoc;
  uint32_t length = 0;           // d.length
  uint64_t collection_size = 0;  // d.collectionSize
  double avg_doc_length = 0.0;
};

// Per-column statistics available to α (the paper's c and p arguments:
// the column's keyword and the position's index record).
struct ColumnContext {
  TermId term = kInvalidTerm;
  uint64_t doc_freq = 0;   // #Docs: documents containing the keyword
  uint32_t tf_in_doc = 0;  // #InDoc: occurrences of the keyword in doc
};

// Query-level facts available to ω (e.g. Lucene's coord denominator).
struct QueryContext {
  uint32_t num_columns = 0;  // number of position variables in the query
};

class ScoringScheme {
 public:
  virtual ~ScoringScheme() = default;

  ScoringScheme(const ScoringScheme&) = delete;
  ScoringScheme& operator=(const ScoringScheme&) = delete;

  virtual std::string_view name() const = 0;
  virtual const SchemeProperties& properties() const = 0;

  // α. `offset` is kEmptyOffset for ∅ cells. Note: per Section 3.1, an ∅
  // cell does not imply the keyword is absent — col.tf_in_doc may be > 0.
  virtual InternalScore Init(const DocContext& doc, const ColumnContext& col,
                             Offset offset) const = 0;

  virtual InternalScore Conj(const InternalScore& left,
                             const InternalScore& right) const = 0;
  virtual InternalScore Disj(const InternalScore& left,
                             const InternalScore& right) const = 0;
  virtual InternalScore Alt(const InternalScore& left,
                            const InternalScore& right) const = 0;

  // ⊗: s ⊕ s ⊕ ... ⊕ s (k copies) in O(1). The default folds ⊕ k-1 times,
  // which is always correct; schemes declaring alt_multiplies override it.
  virtual InternalScore Scale(const InternalScore& score, uint64_t k) const;

  // ω.
  virtual double Finalize(const DocContext& doc, const QueryContext& query,
                          const InternalScore& score) const = 0;

 protected:
  ScoringScheme() = default;
};

// Registry of scoring schemes by name. The seven schemes of Section 7 are
// pre-registered; user-defined schemes may be added (the paper's plug-in
// ranking story).
class SchemeRegistry {
 public:
  static SchemeRegistry& Global();

  Status Register(std::unique_ptr<ScoringScheme> scheme);
  // Returns nullptr if unknown.
  const ScoringScheme* Lookup(std::string_view name) const;
  std::vector<const ScoringScheme*> All() const;

 private:
  SchemeRegistry();

  std::vector<std::unique_ptr<ScoringScheme>> schemes_;
};

}  // namespace graft::sa

#endif  // GRAFT_SA_SCORING_SCHEME_H_
