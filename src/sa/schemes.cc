#include "sa/schemes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sa/weighting.h"

namespace graft::sa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- AnySum --
//
// Section 7: "typical of keyword-search systems that find a single match
// per document". α ignores the offset entirely (including ∅ — the paper:
// "all positions (including ∅) for a keyword have the same term weight"),
// ⊕ keeps the left input, so every match scores the document identically.
// This is the only scheme with the `constant` property, enabling the
// forward-scan join and alternate elimination.
class AnySumScheme final : public ScoringScheme {
 public:
  AnySumScheme() {
    props_.direction = Direction::kDiagonal;
    props_.positional = false;
    props_.constant = true;
    props_.alt_multiplies = true;
    props_.bounded = true;  // BM25 is monotone ↑ in tf, ↓ in |d|.
    props_.alt = {/*associative=*/true, /*commutative=*/true,
                  /*monotonic_increasing=*/false, /*idempotent=*/true};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "AnySum"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset /*offset*/) const override {
    return InternalScore(Bm25(doc, col));
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& /*r*/) const override {
    return l;
  }
  InternalScore Scale(const InternalScore& s, uint64_t /*k*/) const override {
    return s;
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    return s.a;
  }

 private:
  SchemeProperties props_;
};

// --------------------------------------------------------------- AnyProd --
//
// Terrier's language-model flavour of AnySum (Section 7: "the score of a
// match is the product (vs sum) of the term position scores"). Weights are
// squashed into (0, 1] via 1 − e^(−bm25), floored away from zero so an
// absent term does not annihilate the product. Shares AnySum's property
// profile: constant, diagonal, ⊕ idempotent.
class AnyProdScheme final : public ScoringScheme {
 public:
  AnyProdScheme() {
    props_.direction = Direction::kDiagonal;
    props_.positional = false;
    props_.constant = true;
    props_.alt_multiplies = true;
    props_.bounded = true;  // 1 − e^(−bm25) inherits BM25's monotonicity.
    props_.alt = {true, true, false, true};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "AnyProd"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset /*offset*/) const override {
    // Probability-like weight in (0, 1]; absent terms contribute a small
    // floor rather than zeroing the product.
    const double w = 1.0 - std::exp(-Bm25(doc, col));
    return InternalScore(std::max(w, 1e-6));
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a * r.a);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a * r.a);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& /*r*/) const override {
    return l;
  }
  InternalScore Scale(const InternalScore& s, uint64_t /*k*/) const override {
    return s;
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    return s.a;
  }

 private:
  SchemeProperties props_;
};

// --------------------------------------------------------------- SumBest --
//
// Section 7: "column-first, initializes the score of non-∅ positions to
// BM25 and the score of ∅ to 0. Column score is the maximum score in the
// column; document score is the sum of the column scores."
class SumBestScheme final : public ScoringScheme {
 public:
  SumBestScheme() {
    props_.direction = Direction::kColumnFirst;
    props_.positional = false;
    props_.constant = false;
    props_.alt_multiplies = true;
    props_.bounded = true;  // non-∅ cells are BM25; ∅ floors at 0.
    props_.alt = {true, true, true, true};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "SumBest"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    if (offset == kEmptyOffset) {
      return InternalScore(0.0);
    }
    return InternalScore(Bm25(doc, col));
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(std::max(l.a, r.a));
  }
  InternalScore Scale(const InternalScore& s, uint64_t /*k*/) const override {
    return s;  // max of k equal scores.
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    return s.a;
  }

 private:
  SchemeProperties props_;
};

// ---------------------------------------------------------------- Lucene --
//
// Lucene-classic similarity expressed in SA: per-cell weight is
// sqrt(tf) · idf² / sqrt(|d|) (position-independent — Lucene weighs a term
// once per document), ⊕ is max (idempotent over the equal alternates),
// ⊘/⊚ sum, and ω applies the coord factor matched/|query|.
//
// The paper's Lucene scheme additionally scores *imperfect* proximity
// matches; the authors omit that extension ("an ad-hoc solution to fuzzy
// matching... beyond the scope of this paper") and so do we. Declared
// diagonal and non-positional for free keywords (footnote 2 of Table 2:
// positional only under phrase/proximity predicates); on the conjunctive /
// phrase queries Lucene supports, row-first and column-first aggregation
// coincide because all alternates within a column carry equal weights.
class LuceneScheme final : public ScoringScheme {
 public:
  LuceneScheme() {
    props_.direction = Direction::kDiagonal;
    props_.positional = false;
    props_.constant = false;
    props_.alt_multiplies = true;
    props_.bounded = true;  // sqrt(tf)·idf²/sqrt(|d|): ↑ in tf, ↓ in |d|.
    props_.alt = {true, true, true, true};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "Lucene"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    if (offset == kEmptyOffset || col.tf_in_doc == 0 || doc.length == 0) {
      return InternalScore(0.0, 0.0);
    }
    const double idf =
        1.0 + std::log(static_cast<double>(doc.collection_size) /
                       (static_cast<double>(col.doc_freq) + 1.0));
    const double weight = std::sqrt(static_cast<double>(col.tf_in_doc)) *
                          idf * idf /
                          std::sqrt(static_cast<double>(doc.length));
    return InternalScore(weight, 1.0);
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a, l.b + r.b);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a, l.b + r.b);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(std::max(l.a, r.a), std::max(l.b, r.b));
  }
  InternalScore Scale(const InternalScore& s, uint64_t /*k*/) const override {
    return s;
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& query,
                  const InternalScore& s) const override {
    const double denom = std::max<uint32_t>(1, query.num_columns);
    return s.a * (s.b / denom);
  }

 private:
  SchemeProperties props_;
};

// ------------------------------------------------------- JoinNormalized --
//
// The scheme of Botev et al. [7] / Mihajlovic et al. [20] that Section 2
// uses to demonstrate score inconsistency under encapsulated evaluation:
// a join distributes each input's score value over the tuples it joins
// with. In GRAFT the scheme has no access to intermediate-result sizes, so
// it tracks the *canonical* subtable sizes in the internal score's `size`
// field (the paper does exactly this).
class JoinNormalizedScheme final : public ScoringScheme {
 public:
  JoinNormalizedScheme() {
    props_.direction = Direction::kDiagonal;
    props_.positional = false;
    props_.constant = false;
    props_.alt_multiplies = true;
    // Not bounded: ⊘/⊚ divide by the partner's subtable size, so a
    // per-term ceiling does not bound the combined score.
    props_.bounded = false;
    props_.alt = {true, true, true, false};
    props_.conj = {false, true, true, false};
    props_.disj = {false, true, true, false};
  }

  std::string_view name() const override { return "JoinNormalized"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    // size is the paper's p.countInDoc (d.occurrences(a) for ∅), clamped to
    // >= 1 so the ⊘ normalization is well defined when the keyword is
    // absent from the document.
    const double size = std::max<uint32_t>(1, col.tf_in_doc);
    if (offset == kEmptyOffset) {
      return InternalScore(0.0, size);
    }
    return InternalScore(TfIdf(doc, col), size);
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a / r.b + r.a / l.b, l.b * r.b);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    const double size = l.b * r.b + l.b + r.b;
    double scr = 0.0;
    if (r.a == 0.0) {
      scr = l.a / 2.0;
    } else if (l.a == 0.0) {
      scr = r.a / 2.0;
    } else {
      scr = l.a / (2.0 * r.b) + r.a / (2.0 * l.b);
    }
    return InternalScore(scr, size);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(l.a + r.a, r.b);
  }
  InternalScore Scale(const InternalScore& s, uint64_t k) const override {
    return InternalScore(s.a * static_cast<double>(k), s.b);
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    return s.a;
  }

 private:
  SchemeProperties props_;
};

// ------------------------------------------------------------ EventModel --
//
// The probabilistic event model of XIRQL [13] / TopX [29]: term weights are
// treated as independent events; ∧ is event conjunction (product), ∨ and
// alternate aggregation are event disjunction (inclusion-exclusion). BM25
// weights are squashed through 1 − e^(−bm25) so they are probabilities in
// [0,1) (the paper is silent on normalization; inclusion-exclusion requires
// it — recorded as a deviation in DESIGN.md).
//
// Row-first directional: the document score is the disjunction of its
// *match* scores, and probabilistic AND/OR do not distribute (Definition 3
// fails), so row and column aggregation give different scores.
class EventModelScheme final : public ScoringScheme {
 public:
  EventModelScheme() {
    props_.direction = Direction::kRowFirst;
    props_.positional = false;
    props_.constant = false;
    props_.alt_multiplies = true;
    props_.bounded = true;  // 1 − e^(−bm25) ∈ [0,1): ↑ in tf, ↓ in |d|.
    props_.alt = {true, true, true, false};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "EventModel"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    if (offset == kEmptyOffset) {
      return InternalScore(0.0);
    }
    return InternalScore(1.0 - std::exp(-Bm25(doc, col)));
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a * r.a);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a - l.a * r.a);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(l.a + r.a - l.a * r.a);
  }
  InternalScore Scale(const InternalScore& s, uint64_t k) const override {
    return InternalScore(1.0 - std::pow(1.0 - s.a, static_cast<double>(k)));
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    return s.a;
  }

 private:
  SchemeProperties props_;
};

// --------------------------------------------------------------- MeanSum --
//
// The paper's Example 3, verbatim: internal score is ⟨sum, count⟩; the
// score of a match is the total tfidf of its positions, the score of a
// document is the mean over its alternate matches, normalized into [0,1]
// by ω(s) = 1 − 1/ln(mean + e). Diagonal: sums distribute and ⊘/⊚ preserve
// the count of an ⊕-fold, so Definition 3 holds — which is why the paper's
// Example 5 can walk the table column-wise even though MEANSUM is phrased
// per match.
class MeanSumScheme final : public ScoringScheme {
 public:
  MeanSumScheme() {
    props_.direction = Direction::kDiagonal;
    props_.positional = false;
    props_.constant = false;
    props_.alt_multiplies = true;
    // Not bounded: ω divides by the ⊕-fold count, so a larger match set
    // can lower the final score — a per-term tf ceiling does not bound ω.
    props_.bounded = false;
    props_.alt = {true, true, true, false};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "MeanSum"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    if (offset == kEmptyOffset) {
      return InternalScore(0.0, 1.0);
    }
    return InternalScore(TfIdf(doc, col), 1.0);
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a, l.b);
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return InternalScore(l.a + r.a, l.b);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(l.a + r.a, l.b + r.b);
  }
  InternalScore Scale(const InternalScore& s, uint64_t k) const override {
    return InternalScore(s.a * static_cast<double>(k),
                         s.b * static_cast<double>(k));
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    const double mean = s.b == 0.0 ? 0.0 : s.a / s.b;
    return 1.0 - 1.0 / std::log(mean + std::exp(1.0));
  }

 private:
  SchemeProperties props_;
};

// -------------------------------------------------------- BestSumMinDist --
//
// Section 7's BestSum+MinDist: the score of a match is the sum of BM25
// weights of its positions plus a proximity boost from the MinDist measure
// of Tao & Zhai [25] (smallest pairwise distance among the match's
// positions); the document score is its best match. Positional (α output
// depends on the actual offset) and row-first (MinDist is per-match).
class BestSumMinDistScheme final : public ScoringScheme {
 public:
  BestSumMinDistScheme() {
    props_.direction = Direction::kRowFirst;
    props_.positional = true;
    props_.constant = false;
    props_.alt_multiplies = true;
    // Not bounded: the MinDist proximity boost depends on actual offsets,
    // which block-max metadata (tf + length only) cannot bound.
    props_.bounded = false;
    props_.alt = {true, true, true, true};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }

  std::string_view name() const override { return "BestSumMinDist"; }
  const SchemeProperties& properties() const override { return props_; }

  InternalScore Init(const DocContext& doc, const ColumnContext& col,
                     Offset offset) const override {
    InternalScore score;
    if (offset == kEmptyOffset) {
      score.a = 0.0;
      score.b = kInf;
      return score;
    }
    score.a = Bm25(doc, col);
    score.b = kInf;  // MinDist of a singleton is undefined (∞).
    score.positions.push_back(offset);
    return score;
  }
  InternalScore Conj(const InternalScore& l,
                     const InternalScore& r) const override {
    InternalScore out;
    out.a = l.a + r.a;
    out.positions.reserve(l.positions.size() + r.positions.size());
    std::merge(l.positions.begin(), l.positions.end(), r.positions.begin(),
               r.positions.end(), std::back_inserter(out.positions));
    out.b = MinDist(out.positions);
    return out;
  }
  InternalScore Disj(const InternalScore& l,
                     const InternalScore& r) const override {
    return Conj(l, r);
  }
  InternalScore Alt(const InternalScore& l,
                    const InternalScore& r) const override {
    return InternalScore(std::max(l.a, r.a), std::min(l.b, r.b));
  }
  InternalScore Scale(const InternalScore& s, uint64_t /*k*/) const override {
    return InternalScore(s.a, s.b);
  }
  double Finalize(const DocContext& /*doc*/, const QueryContext& /*query*/,
                  const InternalScore& s) const override {
    // dist = ∞ ⟹ no proximity evidence ⟹ boost log(1+0) = 0.
    return s.a + std::log(1.0 + std::exp(-s.b));
  }

 private:
  // Smallest distance between two distinct positions; positions is sorted.
  static double MinDist(const std::vector<Offset>& positions) {
    double best = kInf;
    for (size_t i = 1; i < positions.size(); ++i) {
      best = std::min(best, static_cast<double>(positions[i]) -
                                static_cast<double>(positions[i - 1]));
    }
    return best;
  }

  SchemeProperties props_;
};

}  // namespace

std::unique_ptr<ScoringScheme> MakeAnySumScheme() {
  return std::make_unique<AnySumScheme>();
}
std::unique_ptr<ScoringScheme> MakeAnyProdScheme() {
  return std::make_unique<AnyProdScheme>();
}
std::unique_ptr<ScoringScheme> MakeSumBestScheme() {
  return std::make_unique<SumBestScheme>();
}
std::unique_ptr<ScoringScheme> MakeLuceneScheme() {
  return std::make_unique<LuceneScheme>();
}
std::unique_ptr<ScoringScheme> MakeJoinNormalizedScheme() {
  return std::make_unique<JoinNormalizedScheme>();
}
std::unique_ptr<ScoringScheme> MakeEventModelScheme() {
  return std::make_unique<EventModelScheme>();
}
std::unique_ptr<ScoringScheme> MakeMeanSumScheme() {
  return std::make_unique<MeanSumScheme>();
}
std::unique_ptr<ScoringScheme> MakeBestSumMinDistScheme() {
  return std::make_unique<BestSumMinDistScheme>();
}

}  // namespace graft::sa
