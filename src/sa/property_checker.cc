#include "sa/property_checker.h"

#include <cmath>

#include "common/random.h"

namespace graft::sa {

namespace {

constexpr double kTolerance = 1e-7;

// Sampling machinery: realizable internal scores are those reachable
// through the scheme's own operators from α outputs. One trial fixes a
// document context and two column contexts, then folds random α outputs.
class Sampler {
 public:
  Sampler(const ScoringScheme& scheme, uint64_t seed)
      : scheme_(scheme), rng_(seed) {
    NewTrial();
  }

  void NewTrial() {
    doc_.doc = static_cast<DocId>(rng_.NextBounded(100000));
    doc_.length = static_cast<uint32_t>(rng_.NextInRange(40, 600));
    doc_.collection_size = rng_.NextInRange(50000, 5000000);
    doc_.avg_doc_length = 250.0;
    for (ColumnContext& col : cols_) {
      col.term = static_cast<TermId>(rng_.NextBounded(1000));
      // A term's document frequency cannot exceed the collection size.
      col.doc_freq = rng_.NextInRange(10, doc_.collection_size / 2);
      col.tf_in_doc = static_cast<uint32_t>(rng_.NextInRange(1, 8));
    }
  }

  // α output for column `c`; ∅ with the given probability.
  InternalScore Cell(int c, double empty_probability = 0.3) {
    const Offset offset =
        rng_.NextBool(empty_probability)
            ? kEmptyOffset
            : static_cast<Offset>(rng_.NextBounded(doc_.length));
    return scheme_.Init(doc_, cols_[c], offset);
  }

  // A realizable alternate score of column `c`: an ⊕-fold of `folds` cells
  // (random 1..3 when folds == 0).
  InternalScore AltScore(int c, double empty_probability = 0.3,
                         uint64_t folds = 0) {
    if (folds == 0) {
      folds = 1 + rng_.NextBounded(3);
    }
    InternalScore acc = Cell(c, empty_probability);
    for (uint64_t i = 1; i < folds; ++i) {
      acc = scheme_.Alt(acc, Cell(c, empty_probability));
    }
    return acc;
  }

  const DocContext& doc() const { return doc_; }
  Rng& rng() { return rng_; }

 private:
  const ScoringScheme& scheme_;
  Rng rng_;
  DocContext doc_;
  ColumnContext cols_[2];
};

std::string Violation(const InternalScore& left, const InternalScore& right) {
  return left.ToString() + " != " + right.ToString();
}

using Combine = InternalScore (ScoringScheme::*)(const InternalScore&,
                                                 const InternalScore&) const;

void CheckCombinator(const ScoringScheme& scheme, const std::string& symbol,
                     Combine op, const CombinatorProps& declared,
                     bool operands_same_column, int samples, uint64_t seed,
                     PropertyReport* report) {
  // Conjuncted/disjuncted scores refer to the *same* set of matches
  // (Section 4.1), so for ⊘/⊚ all operands in a trial are folds of the
  // same length; alternate (⊕) operands may be folds of any length.
  uint64_t trial_folds = 1;
  const auto operand = [&](Sampler& sampler, int preferred) {
    return operands_same_column
               ? sampler.AltScore(0)
               : sampler.AltScore(preferred, 0.3, trial_folds);
  };

  PropertyCheckResult commutative{symbol + " commutative",
                                  declared.commutative, true, ""};
  PropertyCheckResult associative{symbol + " associative",
                                  declared.associative, true, ""};
  PropertyCheckResult idempotent{symbol + " idempotent", declared.idempotent,
                                 true, ""};
  PropertyCheckResult monotonic{symbol + " monotonic increasing",
                                declared.monotonic_increasing, true, ""};

  Sampler sampler(scheme, seed);
  for (int i = 0; i < samples; ++i) {
    sampler.NewTrial();
    trial_folds = 1 + sampler.rng().NextBounded(3);
    const InternalScore a = operand(sampler, 0);
    const InternalScore b = operand(sampler, 1);
    const InternalScore c = operand(sampler, operands_same_column ? 0 : 1);

    if (commutative.held_on_samples) {
      const InternalScore ab = (scheme.*op)(a, b);
      const InternalScore ba = (scheme.*op)(b, a);
      if (!ab.ApproxEquals(ba, kTolerance)) {
        commutative.held_on_samples = false;
        commutative.counterexample = Violation(ab, ba);
      }
    }
    if (associative.held_on_samples) {
      const InternalScore left = (scheme.*op)((scheme.*op)(a, b), c);
      const InternalScore right = (scheme.*op)(a, (scheme.*op)(b, c));
      if (!left.ApproxEquals(right, kTolerance)) {
        associative.held_on_samples = false;
        associative.counterexample = Violation(left, right);
      }
    }
    if (idempotent.held_on_samples) {
      const InternalScore aa = (scheme.*op)(a, a);
      if (!aa.ApproxEquals(a, kTolerance)) {
        idempotent.held_on_samples = false;
        idempotent.counterexample = Violation(aa, a);
      }
    }
    if (monotonic.held_on_samples && a.a > 0 && b.a > 0) {
      // Operationalization: growing one operand (by ⊕-absorbing another
      // alternate of the same column) must not shrink the combination's
      // primary slot. Probed over strictly positive scores — the domain
      // where rank-join thresholds operate (schemes like Join-Normalized
      // switch formulas at score 0 for ∅ handling).
      const InternalScore bigger = scheme.Alt(a, sampler.Cell(0, 0.0));
      if (bigger.a >= a.a - kTolerance) {
        const InternalScore small = (scheme.*op)(a, b);
        const InternalScore large = (scheme.*op)(bigger, b);
        if (large.a < small.a - kTolerance * std::max(1.0, std::fabs(small.a))) {
          monotonic.held_on_samples = false;
          monotonic.counterexample = Violation(small, large);
        }
      }
    }
  }
  report->results.push_back(std::move(commutative));
  report->results.push_back(std::move(associative));
  report->results.push_back(std::move(idempotent));
  report->results.push_back(std::move(monotonic));
}

}  // namespace

bool PropertyReport::DeclarationsConsistent() const {
  for (const PropertyCheckResult& result : results) {
    if (result.declared && !result.held_on_samples) {
      return false;
    }
  }
  return true;
}

std::string PropertyReport::ToString() const {
  std::string out = "scheme " + scheme + ":\n";
  for (const PropertyCheckResult& result : results) {
    out += "  " + result.property + ": declared=" +
           (result.declared ? "yes" : "no ") + " held=" +
           (result.held_on_samples ? "yes" : "NO ");
    if (!result.counterexample.empty()) {
      out += "  [" + result.counterexample + "]";
    }
    out += "\n";
  }
  return out;
}

PropertyReport CheckSchemeProperties(const ScoringScheme& scheme,
                                     int samples, uint64_t seed) {
  PropertyReport report;
  report.scheme = std::string(scheme.name());
  const SchemeProperties& props = scheme.properties();

  CheckCombinator(scheme, "⊕", &ScoringScheme::Alt, props.alt,
                  /*operands_same_column=*/true, samples, seed, &report);
  CheckCombinator(scheme, "⊘", &ScoringScheme::Conj, props.conj,
                  /*operands_same_column=*/false, samples, seed + 1,
                  &report);
  CheckCombinator(scheme, "⊚", &ScoringScheme::Disj, props.disj,
                  /*operands_same_column=*/false, samples, seed + 2,
                  &report);

  // ⊕ multiplies: Scale(s, k) must equal the explicit k-fold ⊕.
  {
    PropertyCheckResult multiplies{"⊕ multiplies (⊗)", props.alt_multiplies,
                                   true, ""};
    Sampler sampler(scheme, seed + 3);
    for (int i = 0; i < samples && multiplies.held_on_samples; ++i) {
      sampler.NewTrial();
      const InternalScore s = sampler.AltScore(0);
      const uint64_t k = 1 + sampler.rng().NextBounded(6);
      InternalScore folded = s;
      for (uint64_t j = 1; j < k; ++j) {
        folded = scheme.Alt(folded, s);
      }
      const InternalScore scaled = scheme.Scale(s, k);
      if (!scaled.ApproxEquals(folded, kTolerance)) {
        multiplies.held_on_samples = false;
        multiplies.counterexample = Violation(scaled, folded);
      }
    }
    report.results.push_back(std::move(multiplies));
  }

  // Positional: declared non-positional schemes must ignore the offset.
  {
    PropertyCheckResult positional{"positional", props.positional, true, ""};
    Sampler sampler(scheme, seed + 4);
    bool any_offset_dependence = false;
    for (int i = 0; i < samples; ++i) {
      sampler.NewTrial();
      const InternalScore near = sampler.Cell(0, 0.0);
      const InternalScore far = sampler.Cell(0, 0.0);
      if (!near.ApproxEquals(far, kTolerance) ||
          near.positions != far.positions) {
        any_offset_dependence = true;
        if (!props.positional) {
          positional.held_on_samples = false;
          positional.counterexample = Violation(near, far);
          break;
        }
      }
    }
    if (props.positional && !any_offset_dependence) {
      positional.held_on_samples = false;
      positional.counterexample = "declared positional but α never "
                                  "depended on the offset";
    }
    report.results.push_back(std::move(positional));
  }

  // Constant: every match scores the document identically and ⊕ is
  // idempotent (one match suffices).
  {
    PropertyCheckResult constant{"constant", props.constant, true, ""};
    if (props.constant) {
      Sampler sampler(scheme, seed + 5);
      for (int i = 0; i < samples && constant.held_on_samples; ++i) {
        sampler.NewTrial();
        const InternalScore m1 = sampler.Cell(0);
        const InternalScore m2 = sampler.Cell(0);
        const InternalScore folded = scheme.Alt(m1, m2);
        if (!m1.ApproxEquals(m2, kTolerance) ||
            !folded.ApproxEquals(m1, kTolerance)) {
          constant.held_on_samples = false;
          constant.counterexample = Violation(m1, m2);
        }
      }
    }
    report.results.push_back(std::move(constant));
  }

  // Bounded (upper-boundable α): on declared-bounded schemes the primary
  // slot of a non-∅ cell must be monotone non-decreasing in tf_in_doc and
  // non-increasing in document length — the invariant block-max pruning
  // relies on when it evaluates α at (block max tf, block min length) as a
  // score ceiling.
  {
    PropertyCheckResult bounded{"bounded (α upper-boundable)", props.bounded,
                                true, ""};
    if (props.bounded) {
      Sampler sampler(scheme, seed + 7);
      Rng& rng = sampler.rng();
      for (int i = 0; i < samples && bounded.held_on_samples; ++i) {
        sampler.NewTrial();
        DocContext doc = sampler.doc();
        ColumnContext col;
        col.term = static_cast<TermId>(rng.NextBounded(1000));
        col.doc_freq = rng.NextInRange(10, doc.collection_size / 2);
        col.tf_in_doc = static_cast<uint32_t>(rng.NextInRange(1, 8));
        DocContext doc_hi = doc;
        ColumnContext col_hi = col;
        // Pointwise-dominating context: tf grows, length shrinks.
        col_hi.tf_in_doc += static_cast<uint32_t>(rng.NextBounded(8));
        doc_hi.length = static_cast<uint32_t>(
            rng.NextInRange(1, std::max<uint32_t>(1, doc.length)));
        const InternalScore lo = scheme.Init(doc, col, /*offset=*/0);
        const InternalScore hi = scheme.Init(doc_hi, col_hi, /*offset=*/0);
        if (hi.a < lo.a - kTolerance * std::max(1.0, std::fabs(lo.a))) {
          bounded.held_on_samples = false;
          bounded.counterexample = Violation(lo, hi);
        }
      }
    }
    report.results.push_back(std::move(bounded));
  }

  // Diagonal (Definition 3), on conjunctive-realizable samples (no ∅ —
  // the query classes rigid engines like Lucene declare diagonality for).
  {
    PropertyCheckResult diagonal{"diagonal (Definition 3)",
                                 props.diagonal(), true, ""};
    if (props.diagonal()) {
      Sampler sampler(scheme, seed + 6);
      for (int i = 0; i < samples && diagonal.held_on_samples; ++i) {
        sampler.NewTrial();
        const InternalScore w = sampler.Cell(0, 0.0);
        const InternalScore y = sampler.Cell(0, 0.0);
        const InternalScore x = sampler.Cell(1, 0.0);
        const InternalScore z = sampler.Cell(1, 0.0);
        const InternalScore conj_left =
            scheme.Alt(scheme.Conj(w, x), scheme.Conj(y, z));
        const InternalScore conj_right =
            scheme.Conj(scheme.Alt(w, y), scheme.Alt(x, z));
        const InternalScore disj_left =
            scheme.Alt(scheme.Disj(w, x), scheme.Disj(y, z));
        const InternalScore disj_right =
            scheme.Disj(scheme.Alt(w, y), scheme.Alt(x, z));
        if (!conj_left.ApproxEquals(conj_right, kTolerance)) {
          diagonal.held_on_samples = false;
          diagonal.counterexample = Violation(conj_left, conj_right);
        } else if (!disj_left.ApproxEquals(disj_right, kTolerance)) {
          diagonal.held_on_samples = false;
          diagonal.counterexample = Violation(disj_left, disj_right);
        }
      }
    }
    report.results.push_back(std::move(diagonal));
  }

  return report;
}

}  // namespace graft::sa
