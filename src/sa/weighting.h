// Term-weighting functions used as α building blocks (Section 4.1, Step 1:
// "typically implements a term weighting function such as TF-IDF, BM25").

#ifndef GRAFT_SA_WEIGHTING_H_
#define GRAFT_SA_WEIGHTING_H_

#include "sa/scoring_scheme.h"

namespace graft::sa {

// The paper's Example 3/5 tfidf:
//   (#InDoc / d.length) * (d.collectionSize / #Docs)
// Returns 0 when the term does not occur in the document or statistics are
// degenerate.
double TfIdf(const DocContext& doc, const ColumnContext& col);

// Okapi BM25 with k1 = 1.2, b = 0.75 and the standard "plus one" idf
// (always positive). Position-independent: depends on tf-in-doc, not on the
// specific offset — exactly the property the paper leans on for AnySum-like
// schemes.
double Bm25(const DocContext& doc, const ColumnContext& col);

}  // namespace graft::sa

#endif  // GRAFT_SA_WEIGHTING_H_
