#include "sa/weighting.h"

#include <cmath>

namespace graft::sa {

double TfIdf(const DocContext& doc, const ColumnContext& col) {
  if (col.tf_in_doc == 0 || doc.length == 0 || col.doc_freq == 0) {
    return 0.0;
  }
  return (static_cast<double>(col.tf_in_doc) /
          static_cast<double>(doc.length)) *
         (static_cast<double>(doc.collection_size) /
          static_cast<double>(col.doc_freq));
}

double Bm25(const DocContext& doc, const ColumnContext& col) {
  if (col.tf_in_doc == 0 || doc.length == 0 || col.doc_freq == 0) {
    return 0.0;
  }
  constexpr double k1 = 1.2;
  constexpr double b = 0.75;
  const double n = static_cast<double>(doc.collection_size);
  const double df = static_cast<double>(col.doc_freq);
  const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  const double tf = static_cast<double>(col.tf_in_doc);
  const double avg = doc.avg_doc_length > 0.0
                         ? doc.avg_doc_length
                         : static_cast<double>(doc.length);
  const double norm =
      tf * (k1 + 1.0) /
      (tf + k1 * (1.0 - b + b * static_cast<double>(doc.length) / avg));
  return idf * norm;
}

}  // namespace graft::sa
