#include "sa/scoring_scheme.h"

#include <algorithm>
#include <cstdio>

#include "sa/schemes.h"

namespace graft::sa {

std::string DirectionName(Direction direction) {
  switch (direction) {
    case Direction::kDiagonal:
      return "diagonal";
    case Direction::kRowFirst:
      return "row-first";
    case Direction::kColumnFirst:
      return "column-first";
  }
  return "?";
}

std::string InternalScore::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<%.6g,%.6g,|pos|=%zu>", a, b,
                positions.size());
  return buf;
}

InternalScore ScoringScheme::Scale(const InternalScore& score,
                                   uint64_t k) const {
  // Correct-by-construction default: fold ⊕ k-1 times. Schemes declaring
  // alt_multiplies override with an O(1) implementation.
  InternalScore acc = score;
  for (uint64_t i = 1; i < k; ++i) {
    acc = Alt(acc, score);
  }
  return acc;
}

SchemeRegistry::SchemeRegistry() {
  schemes_.push_back(MakeAnySumScheme());
  schemes_.push_back(MakeAnyProdScheme());
  schemes_.push_back(MakeSumBestScheme());
  schemes_.push_back(MakeLuceneScheme());
  schemes_.push_back(MakeJoinNormalizedScheme());
  schemes_.push_back(MakeEventModelScheme());
  schemes_.push_back(MakeMeanSumScheme());
  schemes_.push_back(MakeBestSumMinDistScheme());
}

SchemeRegistry& SchemeRegistry::Global() {
  static SchemeRegistry& registry = *new SchemeRegistry();
  return registry;
}

Status SchemeRegistry::Register(std::unique_ptr<ScoringScheme> scheme) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("null scheme");
  }
  if (Lookup(scheme->name()) != nullptr) {
    return Status::AlreadyExists("scheme already registered: " +
                                 std::string(scheme->name()));
  }
  schemes_.push_back(std::move(scheme));
  return Status::Ok();
}

const ScoringScheme* SchemeRegistry::Lookup(std::string_view name) const {
  for (const auto& scheme : schemes_) {
    if (scheme->name() == name) {
      return scheme.get();
    }
  }
  return nullptr;
}

std::vector<const ScoringScheme*> SchemeRegistry::All() const {
  std::vector<const ScoringScheme*> all;
  all.reserve(schemes_.size());
  for (const auto& scheme : schemes_) {
    all.push_back(scheme.get());
  }
  return all;
}

}  // namespace graft::sa
