// Internal scores (Section 4.1, Step 3).
//
// Score aggregation is defined with binary operators, so schemes whose
// aggregate is not naturally binary-composable (mean, min-distance) carry a
// structured "internal score" through aggregation and only collapse it to a
// float in the finalizer ω. InternalScore provides two generic numeric
// slots plus an offset list used only by positional schemes:
//
//   scheme            a            b          positions
//   AnySum/SumBest    score        (coord)    -
//   Lucene            score        matched    -
//   MeanSum           sum          count      -
//   Join-Normalized   scr          size       -
//   Event Model       probability  -          -
//   BestSum+MinDist   scr          min dist   match offsets

#ifndef GRAFT_SA_INTERNAL_SCORE_H_
#define GRAFT_SA_INTERNAL_SCORE_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "index/types.h"

namespace graft::sa {

struct InternalScore {
  double a = 0.0;
  double b = 0.0;
  std::vector<Offset> positions;

  InternalScore() = default;
  explicit InternalScore(double a_in, double b_in = 0.0) : a(a_in), b(b_in) {}

  // Structural equality with tolerance on the numeric slots, for tests and
  // the empirical property checker.
  bool ApproxEquals(const InternalScore& other, double tolerance = 1e-9) const {
    auto close = [tolerance](double x, double y) {
      if (std::isinf(x) || std::isinf(y)) return x == y;
      const double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
      return std::fabs(x - y) <= tolerance * scale;
    };
    return close(a, other.a) && close(b, other.b);
  }

  std::string ToString() const;
};

}  // namespace graft::sa

#endif  // GRAFT_SA_INTERNAL_SCORE_H_
