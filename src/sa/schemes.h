// The seven scoring schemes studied in Section 7, as factory functions.
// Each returns a freshly constructed scheme; the pre-registered singletons
// live in SchemeRegistry::Global().
//
//   AnySum          keyword-search scoring (Terrier DFR models, Timber):
//                   constant per document, one match suffices.
//   SumBest         column-first: best alternate per column, summed.
//   Lucene          SumBest-like with Lucene-classic term weights and a
//                   coord factor; declared diagonal (see scheme comments).
//   JoinNormalized  the score-distribution scheme of Botev et al. [7] that
//                   motivates Section 2 (selection pushing changes scores
//                   under encapsulated evaluation).
//   EventModel      probabilistic inclusion-exclusion (XIRQL, TopX).
//   MeanSum         the paper's Example 3 running example: document score
//                   is the mean over matches of the match's tfidf total.
//   BestSumMinDist  BM25 sum boosted by the MinDist proximity measure of
//                   Tao & Zhai; positional and row-first.

#ifndef GRAFT_SA_SCHEMES_H_
#define GRAFT_SA_SCHEMES_H_

#include <memory>

#include "sa/scoring_scheme.h"

namespace graft::sa {

std::unique_ptr<ScoringScheme> MakeAnySumScheme();
// Terrier's language-model variant (Section 7: "the score of a match is
// the product (vs sum) of the term position scores"). Constant, like
// AnySum; weights are squashed into (0,1] so products stay meaningful.
std::unique_ptr<ScoringScheme> MakeAnyProdScheme();
std::unique_ptr<ScoringScheme> MakeSumBestScheme();
std::unique_ptr<ScoringScheme> MakeLuceneScheme();
std::unique_ptr<ScoringScheme> MakeJoinNormalizedScheme();
std::unique_ptr<ScoringScheme> MakeEventModelScheme();
std::unique_ptr<ScoringScheme> MakeMeanSumScheme();
std::unique_ptr<ScoringScheme> MakeBestSumMinDistScheme();

}  // namespace graft::sa

#endif  // GRAFT_SA_SCHEMES_H_
