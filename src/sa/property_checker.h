// Empirical validation of declared scheme properties (supports the Table 2
// reproduction): samples realizable internal scores through the scheme's
// own α/⊕/⊘/⊚ and checks each *declared* algebraic property on random
// triples. A property that is declared but fails on a sample is a scheme
// implementation bug; declared-false properties are reported but not
// required to fail (declarations may be conservative — e.g. MeanSum is
// declared row-first even though its sums are direction-insensitive).

#ifndef GRAFT_SA_PROPERTY_CHECKER_H_
#define GRAFT_SA_PROPERTY_CHECKER_H_

#include <string>
#include <vector>

#include "sa/scoring_scheme.h"

namespace graft::sa {

struct PropertyCheckResult {
  std::string property;  // e.g. "⊕ commutative"
  bool declared = false;
  bool held_on_samples = false;
  std::string counterexample;  // first violation when !held_on_samples
};

struct PropertyReport {
  std::string scheme;
  std::vector<PropertyCheckResult> results;

  // True iff every declared-true property held on all samples.
  bool DeclarationsConsistent() const;
  std::string ToString() const;
};

// Runs `samples` random trials per property with the given seed.
PropertyReport CheckSchemeProperties(const ScoringScheme& scheme,
                                     int samples = 200,
                                     uint64_t seed = 20110612);

}  // namespace graft::sa

#endif  // GRAFT_SA_PROPERTY_CHECKER_H_
