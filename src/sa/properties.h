// Optimization-relevant scoring-scheme properties (Section 5.1).
//
// These are the *only* facts the optimizer knows about a scheme. A scoring
// scheme developer declares them once; the optimizer derives which rewrites
// preserve score consistency (Table 1 → Table 3). The developer never needs
// to know the rewrite catalog.

#ifndef GRAFT_SA_PROPERTIES_H_
#define GRAFT_SA_PROPERTIES_H_

#include <string>

namespace graft::sa {

// Scoring directionality (Section 4.2.2). Diagonal schemes compute the same
// score row-first, column-first, or interleaved (Definition 3) and give the
// optimizer the most freedom.
enum class Direction {
  kDiagonal,
  kRowFirst,
  kColumnFirst,
};

std::string DirectionName(Direction direction);

// Basic algebraic properties of one binary combinator (⊘, ⊚, or ⊕).
struct CombinatorProps {
  bool associative = false;
  bool commutative = false;
  bool monotonic_increasing = false;
  bool idempotent = false;
};

struct SchemeProperties {
  Direction direction = Direction::kDiagonal;

  // Positional (Section 5.1): term positions factor into α. Non-positional
  // schemes admit pre-counting (the offset is never read).
  bool positional = false;

  // Constant (Section 5.1): all matches of a document have the same score
  // and ⊕ is idempotent — one match suffices to score the document.
  bool constant = false;

  // ⊕ multiplies (Section 5.1): a run of k equal scores aggregates in O(1)
  // via ScoringScheme::Scale (the paper's ⊗ operator).
  bool alt_multiplies = false;

  // Bounded (upper-boundable α): the primary slot of Init is monotone
  // non-decreasing in tf_in_doc and non-increasing in document length, and
  // the non-primary slots are invariant across matched (tf >= 1) cells of
  // one term — so the best-α point of a block's (tf, length) Pareto
  // frontier slot-wise dominates every column score in the block. Together
  // with monotone ⊘/⊚ this licenses score-safe dynamic pruning (MaxScore /
  // block-max top-k): a block whose score ceiling cannot reach the current
  // heap threshold may be skipped without changing any returned score.
  bool bounded = false;

  CombinatorProps alt;   // ⊕, the alternate combinator.
  CombinatorProps conj;  // ⊘, the conjunctive combinator.
  CombinatorProps disj;  // ⊚, the disjunctive combinator.

  bool diagonal() const { return direction == Direction::kDiagonal; }
  bool row_first() const { return direction == Direction::kRowFirst; }
};

}  // namespace graft::sa

#endif  // GRAFT_SA_PROPERTIES_H_
