// Binary persistence for the inverted index.
//
// Format (little-endian, version-tagged):
//   magic "GRFTIDX1" | u64 doc_count | u64 total_words
//   | u32[] doc_lengths
//   | u64 term_count, then per term:
//       u32 text_len | bytes text
//       u64 posting_count | u32[] docs | u32[] tfs
//       u64 offset_count | u32[] offsets
//
// offset_start arrays are reconstructed from tfs on load.

#ifndef GRAFT_INDEX_INDEX_IO_H_
#define GRAFT_INDEX_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "index/inverted_index.h"

namespace graft::index {

Status SaveIndex(const InvertedIndex& index, const std::string& path);
StatusOr<InvertedIndex> LoadIndex(const std::string& path);

}  // namespace graft::index

#endif  // GRAFT_INDEX_INDEX_IO_H_
