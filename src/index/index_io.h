// Binary persistence for the inverted index.
//
// Format (little-endian; magic "GRFTIDX" + one version byte, currently
// '2'; arrays are u64 length-prefixed):
//   "GRFTIDX" '2' | u64 doc_count | u64 total_words
//   | u32[] doc_lengths
//   | u64 term_count, then per term:
//       u32 text_len | bytes text
//       u32[] docs | u32[] tfs | u64[] offset_starts
//       | u8[] delta-encoded offsets | u64 collection_frequency
//
// LoadIndex is hardened against corrupt or truncated input: the version
// byte is checked, every declared array length is validated against the
// bytes remaining in the file before allocation, and cross-array
// invariants (tfs vs docs, offset_starts vs encoded bytes) are verified —
// any violation returns DataLoss, never undefined behavior.

#ifndef GRAFT_INDEX_INDEX_IO_H_
#define GRAFT_INDEX_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "index/inverted_index.h"

namespace graft::index {

Status SaveIndex(const InvertedIndex& index, const std::string& path);
StatusOr<InvertedIndex> LoadIndex(const std::string& path);

}  // namespace graft::index

#endif  // GRAFT_INDEX_INDEX_IO_H_
