// Binary persistence for the inverted index — crash-safe and
// integrity-checked.
//
// Format (little-endian; magic "GRFTIDX" + one version byte, currently
// '4'; arrays are u64 length-prefixed; every section is followed by a u32
// CRC32C of the section's bytes):
//   "GRFTIDX" '4'
//   | u64 doc_count | u64 total_words | u32[] doc_lengths | u32 crc
//   | u64 term_count | u32 crc
//   then per term (one checksummed section each):
//       u32 text_len | bytes text
//       u32[] docs | u32[] tfs | u64[] offset_starts
//       | u8[] delta-encoded offsets
//       | u32[] frontier_start | u32[] frontier_tf
//       | u32[] frontier_doc_length
//       | u64 collection_frequency | u32 crc
//
// v4 adds the three block-max frontier arrays: per PostingList::kBlockSize
// posting block, the Pareto frontier of the block's (tf, document length)
// pairs — the inputs a bounded scheme needs to compute an exact block
// score ceiling for dynamic pruning. frontier_start holds block_count+1
// delimiters into the two flattened point arrays. The arrays live INSIDE
// the per-term checksummed record, so the header layout is byte-identical
// to v3 and the existing bit-flip corruption fuzz covers them for free.
//
// LoadIndex also accepts version '3' (the previous format, no block-max
// arrays): the index loads normally with has_block_max() == false and
// block-max pruning gates itself off ("blocked: no block-max metadata").
// SaveIndexV3 writes the legacy layout for downgrade tooling and the
// compatibility tests.
//
// SaveIndex is atomic with respect to crashes: it writes to `path + ".tmp"`,
// fsyncs the data, renames over `path`, and fsyncs the parent directory.
// A writer killed at ANY point (the fork/kill chaos harness exercises
// every registered failpoint) leaves `path` either untouched or holding
// the complete new generation — never a torn mix. Registered failpoints:
// index_io.save.{open_tmp,header,term,before_sync,before_rename,
// before_dirsync} and index_io.load.{open,verify}.
//
// v5 (SaveIndexV5) is a different shape entirely — a sectioned, mmap-able
// layout with delta + fixed-width bit-packed posting blocks (normative
// spec: docs/index-format.md; constants: index/index_format.h). It keeps
// BOTH invariants of the older formats: the same tmp+fsync+rename
// crash-safe protocol, and CRC32C coverage of every byte (prologue by
// direct comparison, section table and each section by checksum, inter-
// section padding validated zero), so the exhaustive bit-flip fuzz holds
// for it too. LoadIndex reads v5 eagerly (materializing the arrays);
// LoadIndexMapped keeps the file mapped and serves postings zero-copy
// through a decoded-block cache.
//
// LoadIndex is hardened against corrupt or truncated input and reports a
// distinct failure class per Status code:
//   * kVersionMismatch — magic matches but the version byte is not '3',
//     '4' or '5' (e.g. an index written by a different build);
//   * kDataLoss       — the file ends early (short read, or a declared
//     array length exceeding the bytes remaining): a torn/truncated file;
//   * kCorruption     — the bytes are all there but wrong: a section CRC
//     mismatch or an impossible structural invariant (bit rot, bad media).
// Every declared length is validated against the bytes remaining BEFORE
// allocation, and section CRCs are verified before their content is used,
// so corrupt input can never cause UB or a giant allocation.

#ifndef GRAFT_INDEX_INDEX_IO_H_
#define GRAFT_INDEX_INDEX_IO_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "index/block_cache.h"
#include "index/inverted_index.h"

namespace graft::index {

Status SaveIndex(const InvertedIndex& index, const std::string& path);
// Legacy writer: emits the v3 layout (no block-max sections). An index
// round-tripped through this loads with has_block_max() == false.
Status SaveIndexV3(const InvertedIndex& index, const std::string& path);
// Compressed sectioned writer (format version '5'). Requires a
// materialized index; re-saving a mapped index means eager-loading it
// first (FailedPrecondition otherwise).
Status SaveIndexV5(const InvertedIndex& index, const std::string& path);
StatusOr<InvertedIndex> LoadIndex(const std::string& path);

struct MappedLoadOptions {
  // Decoded-block cache to charge this index's blocks against. Null gets
  // the index a private cache of `private_cache_bytes` — sharing one cache
  // across reload generations is what makes hot reload memory-bounded.
  std::shared_ptr<BlockCache> cache;
  size_t private_cache_bytes = size_t{64} << 20;
};

// Zero-copy load: validates every section checksum up front, then keeps
// the file mapped and serves postings through the block cache on demand.
// v3/v4 files (which have no packed sections) fall back to the eager
// LoadIndex path transparently — callers can always opt in to mapped
// loading regardless of on-disk version.
StatusOr<InvertedIndex> LoadIndexMapped(const std::string& path,
                                        MappedLoadOptions options = {});

}  // namespace graft::index

#endif  // GRAFT_INDEX_INDEX_IO_H_
