// On-disk index format constants — the single source of truth behind
// docs/index-format.md. tools/check_docs.py parses the `kFmt*` constants
// in THIS header and fails CI when the spec page's tables disagree, so a
// layout change cannot land without its documentation.
//
// Version history (normative layout in docs/index-format.md):
//   '3'  uncompressed per-term arrays, per-section CRC32C (PR 3)
//   '4'  v3 + per-block (tf, doc length) Pareto-frontier arrays inside the
//        per-term checksummed record (PR 5)
//   '5'  sectioned, mmap-able layout: delta + fixed-width bit-packed
//        128-entry posting blocks with per-block headers (frontier
//        metadata rides along), zero-copy payload/offsets access, still
//        CRC32C per section and written by the same tmp+fsync+rename
//        crash-safe protocol (this PR)

#ifndef GRAFT_INDEX_INDEX_FORMAT_H_
#define GRAFT_INDEX_INDEX_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace graft::index {

// 7-byte magic + 1 format-version byte. LoadIndex reads '3', '4' and '5';
// SaveIndex writes kFmtVersionV4 (the in-heap default), SaveIndexV5 the
// sectioned layout below.
inline constexpr char kFmtMagic[7] = {'G', 'R', 'F', 'T', 'I', 'D', 'X'};
inline constexpr char kFmtVersionV3 = '3';
inline constexpr char kFmtVersionV4 = '4';
inline constexpr char kFmtVersionV5 = '5';

// ---- v5 sectioned layout ----
//
// After the 8-byte prologue comes a fixed-size section table: one
// kFmtV5SectionCount-entry array of {u64 offset, u64 length} pairs plus a
// u32 CRC32C of the table bytes. Every section's byte range is covered by
// its own trailing u32 CRC32C (stored immediately after the section, NOT
// included in `length`), verified by the loader before any content is
// trusted — eager and mmap loads alike.

enum class FmtV5Section : uint32_t {
  kCollection = 0,    // u64 doc_count | u64 total_words | u64 n | u32 n×doc_length
  kTermDict = 1,      // u64 term_count | per term: u32 len | bytes
  kTermMeta = 2,      // TermMetaV5[term_count]
  kBlockHeaders = 3,  // BlockHeaderV5[total_blocks]
  kPayload = 4,       // bit-packed block payloads (docs ‖ tfs ‖ offset lens)
  kOffsets = 5,       // delta-varint position bytes (byte-identical to v4)
  kFrontiers = 6,     // per term: u32 n_pts | u32 (blocks+1)×start | u32 n_pts×tf
                      //           | u32 n_pts×doc_length
};
inline constexpr uint32_t kFmtV5SectionCount = 7;

// Postings are grouped into fixed 128-document blocks (must equal
// PostingList::kBlockSize; static_assert in index_io.cc).
inline constexpr size_t kFmtV5BlockSize = 128;

// Fixed-width per-block header: everything a reader needs to locate and
// decode one block — and everything block-max pruning needs to SKIP one
// (last_doc + the frontier arrays) — without touching payload bytes.
struct BlockHeaderV5 {
  uint32_t last_doc;        // largest doc id in the block (skip target)
  uint32_t payload_offset;  // byte offset from the term's payload base
  uint32_t offsets_base;    // byte offset from the term's offsets base
  uint8_t doc_bits;         // packed width of the doc-gap column
  uint8_t tf_bits;          // packed width of the (tf - 1) column
  uint8_t off_bits;         // packed width of the offsets-byte-length column
  uint8_t reserved;         // must be 0
};
static_assert(sizeof(BlockHeaderV5) == 16, "on-disk layout is 16 bytes");
inline constexpr size_t kFmtV5BlockHeaderBytes = sizeof(BlockHeaderV5);

// Fixed-width per-term record. Offsets address into the payload/offsets
// sections; block headers live at [block_begin, block_begin + ceil(
// doc_count / kFmtV5BlockSize)) of the global block-header array.
struct TermMetaV5 {
  uint64_t doc_count;             // postings in the term's list
  uint64_t collection_frequency;  // total occurrences across documents
  uint64_t block_begin;           // first BlockHeaderV5 index
  uint64_t payload_begin;         // byte offset into kPayload
  uint64_t offsets_begin;         // byte offset into kOffsets
  uint64_t offsets_length;        // bytes of position varints
};
static_assert(sizeof(TermMetaV5) == 48, "on-disk layout is 48 bytes");
inline constexpr size_t kFmtV5TermMetaBytes = sizeof(TermMetaV5);

// Block payload layout: three back-to-back packed columns, each starting
// on a byte boundary —
//   docs:  n gaps at doc_bits   (gap_0 = doc_0 - base, gap_i = doc_i -
//          doc_{i-1} - 1; base = 0 for block 0, else previous block's
//          last_doc + 1)
//   tfs:   n values at tf_bits  (stored as tf - 1; tf >= 1 always)
//   lens:  n values at off_bits (byte length of each doc's position
//          varint run; prefix-summed from offsets_base at decode)

}  // namespace graft::index

#endif  // GRAFT_INDEX_INDEX_FORMAT_H_
