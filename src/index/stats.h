// Statistics access for scoring, with an overlay mechanism.
//
// Scoring schemes consume collection statistics (Figure 1 of the paper:
// #Docs, #InDoc, document length, collection size). StatsView resolves each
// statistic against an optional StatsOverlay first and falls back to the
// live index. The overlay exists so tests can inject the paper's exact
// Wikipedia statistics (e.g. collectionSize = 4,638,535) around a tiny
// in-memory index and reproduce the worked examples digit-for-digit.

#ifndef GRAFT_INDEX_STATS_H_
#define GRAFT_INDEX_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "index/inverted_index.h"
#include "index/types.h"

namespace graft::index {

class StatsOverlay {
 public:
  StatsOverlay() = default;

  void SetCollectionSize(uint64_t size) { collection_size_ = size; }
  void SetDocLength(DocId doc, uint32_t length) { doc_length_[doc] = length; }
  void SetDocFreq(const std::string& term, uint64_t df) {
    doc_freq_[term] = df;
  }
  void SetTermFreqInDoc(const std::string& term, DocId doc, uint32_t tf) {
    term_freq_[{term}][doc] = tf;
  }

  std::optional<uint64_t> collection_size() const { return collection_size_; }
  std::optional<uint32_t> doc_length(DocId doc) const {
    const auto it = doc_length_.find(doc);
    if (it == doc_length_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<uint64_t> doc_freq(const std::string& term) const {
    const auto it = doc_freq_.find(term);
    if (it == doc_freq_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<uint32_t> term_freq(const std::string& term, DocId doc) const {
    const auto it = term_freq_.find(term);
    if (it == term_freq_.end()) return std::nullopt;
    const auto jt = it->second.find(doc);
    if (jt == it->second.end()) return std::nullopt;
    return jt->second;
  }

 private:
  std::optional<uint64_t> collection_size_;
  std::unordered_map<DocId, uint32_t> doc_length_;
  std::unordered_map<std::string, uint64_t> doc_freq_;
  std::unordered_map<std::string, std::unordered_map<DocId, uint32_t>>
      term_freq_;
};

// Read-only statistics facade handed to scoring schemes. Cheap to copy.
class StatsView {
 public:
  explicit StatsView(const InvertedIndex* index,
                     const StatsOverlay* overlay = nullptr)
      : index_(index), overlay_(overlay) {}

  uint64_t CollectionSize() const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->collection_size(); v.has_value()) {
        return *v;
      }
    }
    return index_->doc_count();
  }

  uint32_t DocLength(DocId doc) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->doc_length(doc); v.has_value()) {
        return *v;
      }
    }
    return index_->doc_length(doc);
  }

  double AverageDocLength() const { return index_->average_doc_length(); }

  uint64_t DocFreq(TermId term) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->doc_freq(index_->TermText(term));
          v.has_value()) {
        return *v;
      }
    }
    return index_->DocFreq(term);
  }

  uint32_t TermFreqInDoc(TermId term, DocId doc) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->term_freq(index_->TermText(term), doc);
          v.has_value()) {
        return *v;
      }
    }
    return index_->TermFreqInDoc(term, doc);
  }

  const InvertedIndex& index() const { return *index_; }
  bool has_overlay() const { return overlay_ != nullptr; }

 private:
  const InvertedIndex* index_;
  const StatsOverlay* overlay_;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_STATS_H_
