// Statistics access for scoring, with an overlay mechanism.
//
// Scoring schemes consume collection statistics (Figure 1 of the paper:
// #Docs, #InDoc, document length, collection size). StatsView resolves each
// statistic against an optional StatsOverlay first and falls back to the
// live index. The overlay exists so tests can inject the paper's exact
// Wikipedia statistics (e.g. collectionSize = 4,638,535) around a tiny
// in-memory index and reproduce the worked examples digit-for-digit.

#ifndef GRAFT_INDEX_STATS_H_
#define GRAFT_INDEX_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"
#include "index/types.h"

namespace graft::index {

// Collection-level statistics of the WHOLE corpus, installed on a
// per-segment StatsView so every segment of a SegmentedIndex scores
// exactly like the monolithic index (the score-consistency invariant of
// parallel execution: GRAFT scores depend on per-document match rows plus
// collection statistics only, so identical collection statistics ⇒
// identical scores). The frequency tables are indexed by TermId; segments
// intern the full monolithic vocabulary in dictionary order, so local and
// global term ids coincide and one shared table serves every segment.
struct GlobalStats {
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  // Borrowed arrays sized to the vocabulary, owned by the SegmentedIndex.
  // Raw data pointers (not vector pointers) so they stay valid when the
  // owning SegmentedIndex is moved.
  const uint64_t* doc_freq = nullptr;
  const uint64_t* collection_freq = nullptr;

  double average_doc_length() const {
    return doc_count == 0 ? 0.0
                          : static_cast<double>(total_words) /
                                static_cast<double>(doc_count);
  }
};

class StatsOverlay {
 public:
  StatsOverlay() = default;

  void SetCollectionSize(uint64_t size) { collection_size_ = size; }
  void SetTotalWords(uint64_t words) { total_words_ = words; }
  void SetDocLength(DocId doc, uint32_t length) { doc_length_[doc] = length; }
  void SetDocFreq(const std::string& term, uint64_t df) {
    doc_freq_[term] = df;
  }
  void SetCollectionFreq(const std::string& term, uint64_t cf) {
    collection_freq_[term] = cf;
  }
  void SetTermFreqInDoc(const std::string& term, DocId doc, uint32_t tf) {
    term_freq_[{term}][doc] = tf;
  }

  std::optional<uint64_t> collection_size() const { return collection_size_; }
  std::optional<uint64_t> total_words() const { return total_words_; }
  std::optional<uint32_t> doc_length(DocId doc) const {
    const auto it = doc_length_.find(doc);
    if (it == doc_length_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<uint64_t> doc_freq(const std::string& term) const {
    const auto it = doc_freq_.find(term);
    if (it == doc_freq_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<uint64_t> collection_freq(const std::string& term) const {
    const auto it = collection_freq_.find(term);
    if (it == collection_freq_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<uint32_t> term_freq(const std::string& term, DocId doc) const {
    const auto it = term_freq_.find(term);
    if (it == term_freq_.end()) return std::nullopt;
    const auto jt = it->second.find(doc);
    if (jt == it->second.end()) return std::nullopt;
    return jt->second;
  }

 private:
  std::optional<uint64_t> collection_size_;
  std::optional<uint64_t> total_words_;
  std::unordered_map<DocId, uint32_t> doc_length_;
  std::unordered_map<std::string, uint64_t> doc_freq_;
  std::unordered_map<std::string, uint64_t> collection_freq_;
  std::unordered_map<std::string, std::unordered_map<DocId, uint32_t>>
      term_freq_;
};

// Read-only statistics facade handed to scoring schemes. Cheap to copy.
// Resolution order per statistic: overlay (tests, and the router's pinned
// global stats) → global stats (segment of a SegmentedIndex) → the live
// index. Per-document statistics (DocLength, TermFreqInDoc) always resolve
// locally — a segment holds its own documents — while collection-level
// statistics (CollectionSize, AverageDocLength, DocFreq, CollectionFreq)
// come from the overlay or global table.
class StatsView {
 public:
  explicit StatsView(const InvertedIndex* index,
                     const StatsOverlay* overlay = nullptr,
                     const GlobalStats* global = nullptr)
      : index_(index), overlay_(overlay), global_(global) {}

  uint64_t CollectionSize() const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->collection_size(); v.has_value()) {
        return *v;
      }
    }
    if (global_ != nullptr) {
      return global_->doc_count;
    }
    return index_->doc_count();
  }

  uint32_t DocLength(DocId doc) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->doc_length(doc); v.has_value()) {
        return *v;
      }
    }
    return index_->doc_length(doc);
  }

  double AverageDocLength() const {
    // Overlay total_words (with an overlay collection size) pins the
    // average exactly the way GlobalStats does: same division, same
    // operand values ⇒ bit-identical doubles on every shard.
    if (overlay_ != nullptr) {
      if (const auto words = overlay_->total_words(); words.has_value()) {
        const uint64_t docs = CollectionSize();
        return docs == 0 ? 0.0
                         : static_cast<double>(*words) /
                               static_cast<double>(docs);
      }
    }
    if (global_ != nullptr) {
      return global_->average_doc_length();
    }
    return index_->average_doc_length();
  }

  uint64_t DocFreq(TermId term) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->doc_freq(index_->TermText(term));
          v.has_value()) {
        return *v;
      }
    }
    if (global_ != nullptr && global_->doc_freq != nullptr) {
      return global_->doc_freq[term];
    }
    return index_->DocFreq(term);
  }

  uint64_t CollectionFreq(TermId term) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->collection_freq(index_->TermText(term));
          v.has_value()) {
        return *v;
      }
    }
    if (global_ != nullptr && global_->collection_freq != nullptr) {
      return global_->collection_freq[term];
    }
    return index_->CollectionFreq(term);
  }

  uint32_t TermFreqInDoc(TermId term, DocId doc) const {
    return TermFreqInDoc(term, doc, nullptr);
  }

  // Galloping variant for ascending-doc scans: `probe` is a caller-owned
  // cursor position into the term's postings, advanced monotonically (see
  // InvertedIndex::TermFreqInDoc). Caller-owned state keeps the index
  // immutable and the parallel search path race-free.
  uint32_t TermFreqInDoc(TermId term, DocId doc, size_t* probe) const {
    if (overlay_ != nullptr) {
      if (const auto v = overlay_->term_freq(index_->TermText(term), doc);
          v.has_value()) {
        return *v;
      }
    }
    return index_->TermFreqInDoc(term, doc, probe);
  }

  const InvertedIndex& index() const { return *index_; }
  bool has_overlay() const { return overlay_ != nullptr; }
  bool has_global() const { return global_ != nullptr; }

 private:
  const InvertedIndex* index_;
  const StatsOverlay* overlay_;
  const GlobalStats* global_;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_STATS_H_
