#include "index/inverted_index.h"

#include <algorithm>

namespace graft::index {

TermId InvertedIndex::LookupTerm(std::string_view term) const {
  // C++20 heterogeneous lookup on unordered_map needs a transparent hash;
  // the dictionary is small relative to postings so the temporary string is
  // acceptable and keeps the container simple.
  const auto it = dictionary_.find(std::string(term));
  return it == dictionary_.end() ? kInvalidTerm : it->second;
}

TermId InvertedIndex::InternTerm(std::string_view term) {
  const auto [it, inserted] =
      dictionary_.try_emplace(std::string(term), 0);
  if (inserted) {
    it->second = static_cast<TermId>(terms_.size());
    terms_.push_back(it->first);
    postings_.emplace_back();
  }
  return it->second;
}

uint32_t InvertedIndex::TermFreqInDoc(TermId term, DocId doc) const {
  const PostingList& list = postings_[term];
  const std::span<const DocId> docs = list.docs();
  const auto it = std::lower_bound(docs.begin(), docs.end(), doc);
  if (it == docs.end() || *it != doc) {
    return 0;
  }
  return list.tf_at(static_cast<size_t>(it - docs.begin()));
}

IndexBuilder::IndexBuilder() = default;

DocId IndexBuilder::AddDocument(std::span<const std::string_view> tokens) {
  const DocId doc = next_doc_++;
  doc_terms_.clear();
  for (size_t offset = 0; offset < tokens.size(); ++offset) {
    const TermId term = index_.InternTerm(tokens[offset]);
    auto [it, inserted] = doc_offsets_.try_emplace(term);
    if (inserted) {
      doc_terms_.push_back(term);
    }
    it->second.push_back(static_cast<Offset>(offset));
  }
  // Flush per-term offsets into posting lists. Term order within the doc
  // does not matter; offsets are already increasing.
  for (const TermId term : doc_terms_) {
    auto it = doc_offsets_.find(term);
    index_.mutable_postings(term)->AddDocument(doc, it->second);
    it->second.clear();
  }
  doc_offsets_.clear();
  index_.AppendDocLength(static_cast<uint32_t>(tokens.size()));
  return doc;
}

DocId IndexBuilder::AddDocumentPositioned(
    std::span<const std::string_view> tokens,
    std::span<const Offset> offsets) {
  const DocId doc = next_doc_++;
  doc_terms_.clear();
  for (size_t i = 0; i < tokens.size(); ++i) {
    const TermId term = index_.InternTerm(tokens[i]);
    auto [it, inserted] = doc_offsets_.try_emplace(term);
    if (inserted) {
      doc_terms_.push_back(term);
    }
    it->second.push_back(offsets[i]);
  }
  for (const TermId term : doc_terms_) {
    auto it = doc_offsets_.find(term);
    index_.mutable_postings(term)->AddDocument(doc, it->second);
    it->second.clear();
  }
  doc_offsets_.clear();
  index_.AppendDocLength(static_cast<uint32_t>(tokens.size()));
  return doc;
}

DocId IndexBuilder::AddDocumentStrings(const std::vector<std::string>& tokens) {
  std::vector<std::string_view> views;
  views.reserve(tokens.size());
  for (const std::string& token : tokens) {
    views.emplace_back(token);
  }
  return AddDocument(views);
}

InvertedIndex IndexBuilder::Build() { return std::move(index_); }

}  // namespace graft::index
