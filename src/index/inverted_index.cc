#include "index/inverted_index.h"

#include <algorithm>

namespace graft::index {

TermId InvertedIndex::LookupTerm(std::string_view term) const {
  // C++20 heterogeneous lookup on unordered_map needs a transparent hash;
  // the dictionary is small relative to postings so the temporary string is
  // acceptable and keeps the container simple.
  const auto it = dictionary_.find(std::string(term));
  return it == dictionary_.end() ? kInvalidTerm : it->second;
}

TermId InvertedIndex::InternTerm(std::string_view term) {
  const auto [it, inserted] =
      dictionary_.try_emplace(std::string(term), 0);
  if (inserted) {
    it->second = static_cast<TermId>(terms_.size());
    terms_.push_back(it->first);
    postings_.emplace_back();
  }
  return it->second;
}

uint32_t InvertedIndex::TermFreqInDoc(TermId term, DocId doc,
                                      size_t* probe) const {
  const PostingList& list = postings_[term];
  size_t from = probe == nullptr ? 0 : *probe;
  // GallopTo requires every posting before `from` to precede `target`; a
  // stale or backwards probe violates that, so fall back to the O(log df)
  // cold gallop from the front.
  if (from > list.doc_count() ||
      (from > 0 && list.doc_at(from - 1) >= doc)) {
    from = 0;
  }
  const size_t pos = list.GallopTo(from, doc);
  if (probe != nullptr) {
    *probe = pos;
  }
  if (pos >= list.doc_count() || list.doc_at(pos) != doc) {
    return 0;
  }
  return list.tf_at(pos);
}

void InvertedIndex::BuildBlockMax() {
  for (PostingList& list : postings_) {
    list.BuildBlockMax(doc_lengths_);
  }
  has_block_max_ = true;
}

IndexBuilder::IndexBuilder() = default;

// The doc_offsets_ scratch map persists across documents: entries are
// cleared (vectors keep their capacity) rather than erased, so the hot
// build loop neither rehashes the map nor reallocates offset vectors once
// the vocabulary stabilizes. A term's first occurrence in the current
// document is detected by its (cleared) vector being empty.
void IndexBuilder::AccumulateOffset(TermId term, Offset offset) {
  auto [it, inserted] = doc_offsets_.try_emplace(term);
  if (inserted || it->second.empty()) {
    doc_terms_.push_back(term);
    if (inserted) {
      it->second.reserve(4);
    }
  }
  it->second.push_back(offset);
}

DocId IndexBuilder::FlushDocument(uint32_t length) {
  const DocId doc = next_doc_++;
  for (const TermId term : doc_terms_) {
    std::vector<Offset>& offsets = doc_offsets_.find(term)->second;
    index_.mutable_postings(term)->AddDocument(doc, offsets);
    offsets.clear();  // keep capacity for the next document
  }
  doc_terms_.clear();
  index_.AppendDocLength(length);
  return doc;
}

DocId IndexBuilder::AddDocument(std::span<const std::string_view> tokens) {
  doc_terms_.reserve(tokens.size());
  for (size_t offset = 0; offset < tokens.size(); ++offset) {
    AccumulateOffset(index_.InternTerm(tokens[offset]),
                     static_cast<Offset>(offset));
  }
  return FlushDocument(static_cast<uint32_t>(tokens.size()));
}

DocId IndexBuilder::AddDocumentPositioned(
    std::span<const std::string_view> tokens,
    std::span<const Offset> offsets) {
  doc_terms_.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    AccumulateOffset(index_.InternTerm(tokens[i]), offsets[i]);
  }
  return FlushDocument(static_cast<uint32_t>(tokens.size()));
}

DocId IndexBuilder::AddDocumentStrings(const std::vector<std::string>& tokens) {
  std::vector<std::string_view> views;
  views.reserve(tokens.size());
  for (const std::string& token : tokens) {
    views.emplace_back(token);
  }
  return AddDocument(views);
}

InvertedIndex IndexBuilder::Build() {
  index_.BuildBlockMax();
  return std::move(index_);
}

}  // namespace graft::index
