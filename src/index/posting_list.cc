#include "index/posting_list.h"

#include <algorithm>
#include <cassert>

namespace graft::index {

void PostingList::AddDocument(DocId doc, std::span<const Offset> offsets) {
  assert(!offsets.empty());
  assert(docs_.empty() || doc > docs_.back());
  docs_.push_back(doc);
  tfs_.push_back(static_cast<uint32_t>(offsets.size()));
  // Delta-encode: first position absolute, then gaps.
  Offset previous = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    assert(i == 0 || offsets[i] > previous);
    PutVarint32(&encoded_offsets_, offsets[i] - previous);
    previous = offsets[i];
  }
  offset_start_.push_back(encoded_offsets_.size());
  total_positions_ += offsets.size();
}

void PostingList::DecodeOffsets(size_t i, std::vector<Offset>* out) const {
  out->clear();
  const uint32_t tf = tfs_[i];
  out->reserve(tf);
  const uint8_t* p = encoded_offsets_.data() + offset_start_[i];
  Offset running = 0;
  for (uint32_t k = 0; k < tf; ++k) {
    running += GetVarint32(&p);
    out->push_back(running);
  }
}

size_t PostingList::GallopTo(size_t from, DocId target,
                             uint64_t* probes) const {
  const size_t n = docs_.size();
  if (from >= n || docs_[from] >= target) {
    if (probes != nullptr && from < n) {
      ++*probes;
    }
    return from;
  }
  // Gallop: double the step until we overshoot, then binary search inside
  // the final bracket. O(log distance) per skip.
  uint64_t local_probes = 1;  // the docs_[from] >= target check above
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  while (hi < n && docs_[hi] < target) {
    ++local_probes;
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  hi = std::min(hi, n);
  size_t left = lo;
  size_t right = hi;
  while (left < right) {
    ++local_probes;
    const size_t mid = left + (right - left) / 2;
    if (docs_[mid] < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (probes != nullptr) {
    *probes += local_probes;
  }
  return left;
}

void PostingList::RestoreFrom(std::vector<DocId> docs,
                              std::vector<uint32_t> tfs,
                              std::vector<uint64_t> offset_starts,
                              std::vector<uint8_t> encoded_offsets,
                              uint64_t total_positions) {
  docs_ = std::move(docs);
  tfs_ = std::move(tfs);
  offset_start_ = std::move(offset_starts);
  encoded_offsets_ = std::move(encoded_offsets);
  total_positions_ = total_positions;
  assert(offset_start_.size() == docs_.size() + 1);
}

}  // namespace graft::index
