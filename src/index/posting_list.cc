#include "index/posting_list.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace graft::index {

void PostingList::AddDocument(DocId doc, std::span<const Offset> offsets) {
  assert(!offsets.empty());
  assert(docs_.empty() || doc > docs_.back());
  docs_.push_back(doc);
  tfs_.push_back(static_cast<uint32_t>(offsets.size()));
  // Delta-encode: first position absolute, then gaps.
  Offset previous = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    assert(i == 0 || offsets[i] > previous);
    PutVarint32(&encoded_offsets_, offsets[i] - previous);
    previous = offsets[i];
  }
  offset_start_.push_back(encoded_offsets_.size());
  total_positions_ += offsets.size();
}

void PostingList::DecodeOffsets(size_t i, std::vector<Offset>* out) const {
  out->clear();
  const uint32_t tf = tfs_[i];
  out->reserve(tf);
  const uint8_t* p = encoded_offsets_.data() + offset_start_[i];
  Offset running = 0;
  for (uint32_t k = 0; k < tf; ++k) {
    running += GetVarint32(&p);
    out->push_back(running);
  }
}

size_t PostingList::GallopTo(size_t from, DocId target,
                             uint64_t* probes) const {
  const size_t n = docs_.size();
  if (from >= n || docs_[from] >= target) {
    if (probes != nullptr && from < n) {
      ++*probes;
    }
    return from;
  }
  // Gallop: double the step until we overshoot, then binary search inside
  // the final bracket. O(log distance) per skip.
  uint64_t local_probes = 1;  // the docs_[from] >= target check above
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  while (hi < n && docs_[hi] < target) {
    ++local_probes;
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  hi = std::min(hi, n);
  size_t left = lo;
  size_t right = hi;
  while (left < right) {
    ++local_probes;
    const size_t mid = left + (right - left) / 2;
    if (docs_[mid] < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (probes != nullptr) {
    *probes += local_probes;
  }
  return left;
}

void PostingList::ComputeBlockMax(
    std::span<const uint32_t> doc_lengths,
    std::vector<uint32_t>* frontier_start,
    std::vector<uint32_t>* frontier_tf,
    std::vector<uint32_t>* frontier_doc_length) const {
  frontier_start->assign(1, 0);
  frontier_tf->clear();
  frontier_doc_length->clear();
  const size_t n = docs_.size();
  std::vector<std::pair<uint32_t, uint32_t>> points;  // (tf, doc length)
  points.reserve(kBlockSize);
  for (size_t begin = 0; begin < n; begin += kBlockSize) {
    const size_t end = std::min(n, begin + kBlockSize);
    points.clear();
    uint32_t block_min_len = std::numeric_limits<uint32_t>::max();
    for (size_t i = begin; i < end; ++i) {
      const uint32_t len = doc_lengths[docs_[i]];
      points.emplace_back(tfs_[i], len);
      block_min_len = std::min(block_min_len, len);
    }
    // Skyline sweep, tf descending: a point survives iff its length is
    // strictly below every length seen at a higher (or equal, via the
    // secondary length-ascending sort) tf. The result is the Pareto
    // frontier with tf strictly decreasing and length strictly decreasing,
    // so the last emitted point always carries block_min_len.
    std::sort(points.begin(), points.end(),
              [](const std::pair<uint32_t, uint32_t>& a,
                 const std::pair<uint32_t, uint32_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t emitted_before = frontier_tf->size();
    uint64_t running_min = std::numeric_limits<uint64_t>::max();
    for (const auto& [tf, len] : points) {
      if (len >= running_min) continue;
      if (frontier_tf->size() - emitted_before == kMaxFrontierPoints - 1 &&
          len != block_min_len) {
        // Cap reached: one synthetic point (this tf, block min length)
        // dominates this and every remaining skyline point.
        frontier_tf->push_back(tf);
        frontier_doc_length->push_back(block_min_len);
        break;
      }
      frontier_tf->push_back(tf);
      frontier_doc_length->push_back(len);
      running_min = len;
    }
    frontier_start->push_back(static_cast<uint32_t>(frontier_tf->size()));
  }
}

void PostingList::BuildBlockMax(std::span<const uint32_t> doc_lengths) {
  ComputeBlockMax(doc_lengths, &frontier_start_, &frontier_tf_,
                  &frontier_doc_length_);
}

void PostingList::RestoreBlockMax(std::vector<uint32_t> frontier_start,
                                  std::vector<uint32_t> frontier_tf,
                                  std::vector<uint32_t> frontier_doc_length) {
  frontier_start_ = std::move(frontier_start);
  frontier_tf_ = std::move(frontier_tf);
  frontier_doc_length_ = std::move(frontier_doc_length);
  assert(frontier_tf_.size() == frontier_doc_length_.size());
  assert(frontier_start_.size() ==
         (docs_.size() + kBlockSize - 1) / kBlockSize + 1);
  assert(frontier_start_.front() == 0);
  assert(frontier_start_.back() == frontier_tf_.size());
}

void PostingList::RestoreFrom(std::vector<DocId> docs,
                              std::vector<uint32_t> tfs,
                              std::vector<uint64_t> offset_starts,
                              std::vector<uint8_t> encoded_offsets,
                              uint64_t total_positions) {
  docs_ = std::move(docs);
  tfs_ = std::move(tfs);
  offset_start_ = std::move(offset_starts);
  encoded_offsets_ = std::move(encoded_offsets);
  total_positions_ = total_positions;
  assert(offset_start_.size() == docs_.size() + 1);
}

}  // namespace graft::index
