#include "index/posting_list.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>

#include "common/packed_ints.h"

namespace graft::index {

namespace {

// Thread-local memo of the last few fetched blocks. Tight loops (scoring a
// run of postings inside one block, gallop refinement) hit the same
// (list, block, kind) repeatedly; the memo answers those without taking
// the cache mutex, and the held shared_ptr keeps the block alive so
// FetchBlock can hand out a raw pointer. Entries are keyed by generation
// as well as list address, so a reload that reuses a freed list's address
// can never alias a stale block.
struct BlockMemoEntry {
  const void* list = nullptr;
  uint64_t generation = 0;
  uint64_t block = 0;
  BlockKind kind = BlockKind::kDocs;
  BlockCache::BlockPtr data;
};

constexpr size_t kMemoSlots = 16;

BlockMemoEntry* MemoSlot(const void* list, size_t block, BlockKind kind) {
  thread_local std::array<BlockMemoEntry, kMemoSlots> memo;
  const size_t h = (reinterpret_cast<uintptr_t>(list) >> 4) ^ (block * 2 + 1) ^
                   (static_cast<size_t>(kind) << 3);
  return &memo[h % kMemoSlots];
}

}  // namespace

void PostingList::AddDocument(DocId doc, std::span<const Offset> offsets) {
  assert(!offsets.empty());
  assert(docs_.empty() || doc > docs_.back());
  docs_.push_back(doc);
  tfs_.push_back(static_cast<uint32_t>(offsets.size()));
  // Delta-encode: first position absolute, then gaps.
  Offset previous = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    assert(i == 0 || offsets[i] > previous);
    PutVarint32(&encoded_offsets_, offsets[i] - previous);
    previous = offsets[i];
  }
  offset_start_.push_back(encoded_offsets_.size());
  total_positions_ += offsets.size();
}

void PostingList::DecodeOffsets(size_t i, std::vector<Offset>* out) const {
  if (is_packed()) {
    PackedDecodeOffsets(i, out);
    return;
  }
  out->clear();
  const uint32_t tf = tfs_[i];
  out->reserve(tf);
  const uint8_t* p = encoded_offsets_.data() + offset_start_[i];
  Offset running = 0;
  for (uint32_t k = 0; k < tf; ++k) {
    running += GetVarint32(&p);
    out->push_back(running);
  }
}

size_t PostingList::GallopTo(size_t from, DocId target,
                             uint64_t* probes) const {
  if (is_packed()) {
    return PackedGallopTo(from, target, probes);
  }
  const size_t n = docs_.size();
  if (from >= n || docs_[from] >= target) {
    if (probes != nullptr && from < n) {
      ++*probes;
    }
    return from;
  }
  // Gallop: double the step until we overshoot, then binary search inside
  // the final bracket. O(log distance) per skip.
  uint64_t local_probes = 1;  // the docs_[from] >= target check above
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  while (hi < n && docs_[hi] < target) {
    ++local_probes;
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  hi = std::min(hi, n);
  size_t left = lo;
  size_t right = hi;
  while (left < right) {
    ++local_probes;
    const size_t mid = left + (right - left) / 2;
    if (docs_[mid] < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (probes != nullptr) {
    *probes += local_probes;
  }
  return left;
}

void PostingList::ComputeBlockMax(
    std::span<const uint32_t> doc_lengths,
    std::vector<uint32_t>* frontier_start,
    std::vector<uint32_t>* frontier_tf,
    std::vector<uint32_t>* frontier_doc_length) const {
  frontier_start->assign(1, 0);
  frontier_tf->clear();
  frontier_doc_length->clear();
  const size_t n = docs_.size();
  std::vector<std::pair<uint32_t, uint32_t>> points;  // (tf, doc length)
  points.reserve(kBlockSize);
  for (size_t begin = 0; begin < n; begin += kBlockSize) {
    const size_t end = std::min(n, begin + kBlockSize);
    points.clear();
    uint32_t block_min_len = std::numeric_limits<uint32_t>::max();
    for (size_t i = begin; i < end; ++i) {
      const uint32_t len = doc_lengths[docs_[i]];
      points.emplace_back(tfs_[i], len);
      block_min_len = std::min(block_min_len, len);
    }
    // Skyline sweep, tf descending: a point survives iff its length is
    // strictly below every length seen at a higher (or equal, via the
    // secondary length-ascending sort) tf. The result is the Pareto
    // frontier with tf strictly decreasing and length strictly decreasing,
    // so the last emitted point always carries block_min_len.
    std::sort(points.begin(), points.end(),
              [](const std::pair<uint32_t, uint32_t>& a,
                 const std::pair<uint32_t, uint32_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t emitted_before = frontier_tf->size();
    uint64_t running_min = std::numeric_limits<uint64_t>::max();
    for (const auto& [tf, len] : points) {
      if (len >= running_min) continue;
      if (frontier_tf->size() - emitted_before == kMaxFrontierPoints - 1 &&
          len != block_min_len) {
        // Cap reached: one synthetic point (this tf, block min length)
        // dominates this and every remaining skyline point.
        frontier_tf->push_back(tf);
        frontier_doc_length->push_back(block_min_len);
        break;
      }
      frontier_tf->push_back(tf);
      frontier_doc_length->push_back(len);
      running_min = len;
    }
    frontier_start->push_back(static_cast<uint32_t>(frontier_tf->size()));
  }
}

void PostingList::BuildBlockMax(std::span<const uint32_t> doc_lengths) {
  ComputeBlockMax(doc_lengths, &frontier_start_, &frontier_tf_,
                  &frontier_doc_length_);
}

void PostingList::RestoreBlockMax(std::vector<uint32_t> frontier_start,
                                  std::vector<uint32_t> frontier_tf,
                                  std::vector<uint32_t> frontier_doc_length) {
  frontier_start_ = std::move(frontier_start);
  frontier_tf_ = std::move(frontier_tf);
  frontier_doc_length_ = std::move(frontier_doc_length);
  assert(frontier_tf_.size() == frontier_doc_length_.size());
  assert(frontier_start_.size() ==
         (doc_count() + kBlockSize - 1) / kBlockSize + 1);
  assert(frontier_start_.front() == 0);
  assert(frontier_start_.back() == frontier_tf_.size());
}

void PostingList::RestoreFrom(std::vector<DocId> docs,
                              std::vector<uint32_t> tfs,
                              std::vector<uint64_t> offset_starts,
                              std::vector<uint8_t> encoded_offsets,
                              uint64_t total_positions) {
  docs_ = std::move(docs);
  tfs_ = std::move(tfs);
  offset_start_ = std::move(offset_starts);
  encoded_offsets_ = std::move(encoded_offsets);
  total_positions_ = total_positions;
  assert(offset_start_.size() == docs_.size() + 1);
}

void PostingList::RestorePacked(const PackedPostings& packed,
                                uint64_t collection_frequency) {
  assert(packed.cache != nullptr);
  assert(docs_.empty());
  packed_ = packed;
  total_positions_ = collection_frequency;
  // Drop the materialized-mode sentinel entry so accidental raw access
  // trips the asserts instead of reading a phantom empty list.
  offset_start_.clear();
}

void PostingList::UnpackBlock(size_t b, BlockKind kind,
                              DecodedBlock* out) const {
  const BlockHeaderV5& h = packed_.headers[b];
  const size_t begin = b * kBlockSize;
  const size_t n =
      std::min<size_t>(kBlockSize, packed_.doc_count - begin);
  out->count = static_cast<uint32_t>(n);
  const uint8_t* p = packed_.payload + h.payload_offset;
  // Doc gaps -> absolute ids. gap_0 is relative to the previous block's
  // last_doc + 1 (0 for the first block); later gaps store doc_i -
  // doc_{i-1} - 1 since ids are strictly increasing.
  common::UnpackInts(p, n, h.doc_bits, out->docs);
  uint32_t running = b == 0 ? 0 : packed_.headers[b - 1].last_doc + 1;
  for (size_t i = 0; i < n; ++i) {
    running += out->docs[i] + (i > 0 ? 1 : 0);
    out->docs[i] = running;
  }
  if (kind == BlockKind::kDocs) {
    return;
  }
  p += common::PackedBytes(n, h.doc_bits);
  common::UnpackInts(p, n, h.tf_bits, out->tfs);
  for (size_t i = 0; i < n; ++i) {
    ++out->tfs[i];  // stored as tf - 1
  }
  p += common::PackedBytes(n, h.tf_bits);
  // Per-doc position-varint byte lengths, prefix-summed into offsets
  // (relative to the term's offsets base) with one delimiting entry.
  uint32_t lens[kFmtV5BlockSize];
  common::UnpackInts(p, n, h.off_bits, lens);
  out->off_start[0] = h.offsets_base;
  for (size_t i = 0; i < n; ++i) {
    out->off_start[i + 1] = out->off_start[i] + lens[i];
  }
}

const DecodedBlock* PostingList::FetchBlock(size_t b, BlockKind kind) const {
  BlockMemoEntry* slot = MemoSlot(this, b, kind);
  if (slot->list == this && slot->generation == packed_.generation &&
      slot->block == b && slot->kind == kind && slot->data != nullptr) {
    return slot->data.get();
  }
  BlockCache::BlockPtr ptr =
      packed_.cache->Lookup(packed_.generation, packed_.term,
                            static_cast<uint32_t>(b), kind);
  if (ptr == nullptr) {
    auto decoded = std::make_shared<DecodedBlock>();
    UnpackBlock(b, kind, decoded.get());
    ptr = std::move(decoded);
    packed_.cache->Insert(packed_.generation, packed_.term,
                          static_cast<uint32_t>(b), kind, ptr);
  }
  slot->list = this;
  slot->generation = packed_.generation;
  slot->block = b;
  slot->kind = kind;
  slot->data = std::move(ptr);
  return slot->data.get();
}

DocId PostingList::PackedDocAt(size_t i) const {
  const size_t b = i / kBlockSize;
  return FetchBlock(b, BlockKind::kDocs)->docs[i - b * kBlockSize];
}

uint32_t PostingList::PackedTfAt(size_t i) const {
  const size_t b = i / kBlockSize;
  return FetchBlock(b, BlockKind::kFull)->tfs[i - b * kBlockSize];
}

void PostingList::PackedDecodeOffsets(size_t i,
                                      std::vector<Offset>* out) const {
  const size_t b = i / kBlockSize;
  const DecodedBlock* block = FetchBlock(b, BlockKind::kFull);
  const size_t j = i - b * kBlockSize;
  out->clear();
  const uint32_t tf = block->tfs[j];
  out->reserve(tf);
  const uint8_t* p = packed_.offsets + block->off_start[j];
  Offset running = 0;
  for (uint32_t k = 0; k < tf; ++k) {
    running += GetVarint32(&p);
    out->push_back(running);
  }
}

size_t PostingList::PackedGallopTo(size_t from, DocId target,
                                   uint64_t* probes) const {
  const size_t n = packed_.doc_count;
  if (from >= n) {
    return from;
  }
  uint64_t local_probes = 1;  // the doc_at(from) >= target check
  const size_t from_block = from / kBlockSize;
  if (FetchBlock(from_block, BlockKind::kDocs)
          ->docs[from - from_block * kBlockSize] >= target) {
    if (probes != nullptr) {
      *probes += local_probes;
    }
    return from;
  }
  // Block-level binary search over the header last_doc array (no payload
  // touched): first block whose last_doc can contain `target`.
  const size_t num_blocks = (n + kBlockSize - 1) / kBlockSize;
  size_t left = from_block;
  size_t right = num_blocks;
  while (left < right) {
    ++local_probes;
    const size_t mid = left + (right - left) / 2;
    if (packed_.headers[mid].last_doc < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (left == num_blocks) {
    if (probes != nullptr) {
      *probes += local_probes;
    }
    return n;
  }
  // In-block binary search over the decoded doc-id column.
  const DecodedBlock* block = FetchBlock(left, BlockKind::kDocs);
  const size_t base = left * kBlockSize;
  size_t lo = left == from_block ? from - base + 1 : 0;
  size_t hi = block->count;
  while (lo < hi) {
    ++local_probes;
    const size_t mid = lo + (hi - lo) / 2;
    if (block->docs[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (probes != nullptr) {
    *probes += local_probes;
  }
  // The block-level search guarantees a hit inside this block.
  assert(base + lo < n);
  return base + lo;
}

}  // namespace graft::index
