// A partitioned view of the corpus for parallel query execution.
//
// The corpus is split into N contiguous doc-id ranges; each segment is a
// self-contained InvertedIndex over its range (local doc ids 0..n-1,
// global id = segment base + local id). Two invariants make per-segment
// execution *score-consistent* with the monolithic index (GRAFT scores
// are functions of per-document match rows plus collection-level
// statistics only — Section 4's α/ω signatures):
//
//   1. Every segment interns the FULL monolithic vocabulary in dictionary
//      order, so local TermIds equal monolithic TermIds and a term that
//      has no postings in a segment still resolves (to an empty scan)
//      with its correct global document frequency — α(∅) of a
//      frequency-sensitive scheme sees identical statistics everywhere.
//   2. Each segment's StatsView carries a GlobalStats table (collection
//      size, total words, per-term document/collection frequency of the
//      whole corpus), so collection-level statistics are identical across
//      segments while per-document statistics resolve locally.
//
// Under these invariants a document's score computed inside its segment
// is bit-identical to its score in the monolithic index, and per-segment
// ranked streams merge exactly (Fagin-style: independently ranked streams
// combined by a score-ordered merge).

#ifndef GRAFT_INDEX_SEGMENTED_INDEX_H_
#define GRAFT_INDEX_SEGMENTED_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "index/stats.h"

namespace graft::index {

class SegmentedIndex {
 public:
  struct Segment {
    InvertedIndex index;  // local doc ids 0..doc_count-1
    DocId base = 0;       // global doc id of local doc 0
    // Collection-level statistics of the whole corpus; frequency tables
    // are owned by the enclosing SegmentedIndex (term ids are shared).
    GlobalStats stats;
  };

  // Partitions `index` into `num_segments` contiguous doc-id ranges of
  // near-equal size (clamped to the document count; at least 1). Position
  // lists are re-encoded per segment; the source index is not retained.
  static StatusOr<SegmentedIndex> BuildFromMonolithic(
      const InvertedIndex& index, size_t num_segments);

  SegmentedIndex(SegmentedIndex&&) = default;
  SegmentedIndex& operator=(SegmentedIndex&&) = default;

  size_t segment_count() const { return segments_.size(); }
  const Segment& segment(size_t i) const { return segments_[i]; }

  uint64_t doc_count() const { return doc_count_; }
  uint64_t total_words() const { return total_words_; }

  DocId ToGlobal(size_t segment, DocId local) const {
    return segments_[segment].base + local;
  }

 private:
  SegmentedIndex() = default;

  std::vector<Segment> segments_;
  uint64_t doc_count_ = 0;
  uint64_t total_words_ = 0;
  // Indexed by (shared) TermId; referenced by every segment's GlobalStats.
  std::vector<uint64_t> global_doc_freq_;
  std::vector<uint64_t> global_collection_freq_;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_SEGMENTED_INDEX_H_
