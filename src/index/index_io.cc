#include "index/index_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/mmap_region.h"
#include "common/packed_ints.h"
#include "index/index_format.h"

namespace graft::index {

namespace {

GRAFT_DEFINE_FAILPOINT(g_fp_save_open_tmp, "index_io.save.open_tmp");
GRAFT_DEFINE_FAILPOINT(g_fp_save_header, "index_io.save.header");
GRAFT_DEFINE_FAILPOINT(g_fp_save_term, "index_io.save.term");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_sync, "index_io.save.before_sync");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_rename,
                       "index_io.save.before_rename");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_dirsync,
                       "index_io.save.before_dirsync");
GRAFT_DEFINE_FAILPOINT(g_fp_load_open, "index_io.load.open");
GRAFT_DEFINE_FAILPOINT(g_fp_load_verify, "index_io.load.verify");

// 7-byte magic + 1 format-version byte ("GRFTIDX" '4'). Bump the version
// character when the layout changes; LoadIndex rejects unknown versions
// with kVersionMismatch instead of misparsing them. '3' (the layout
// without block-max arrays) is still readable.
constexpr char kMagicPrefix[7] = {'G', 'R', 'F', 'T', 'I', 'D', 'X'};
constexpr char kFormatVersion = '4';
constexpr char kLegacyFormatVersion = '3';
constexpr char kPackedFormatVersion = '5';

// index_format.h is the documented source of truth (tools/check_docs.py
// lints docs/index-format.md against it); pin the local constants to it.
static_assert(sizeof(kMagicPrefix) == sizeof(kFmtMagic));
static_assert(kFmtVersionV3 == kLegacyFormatVersion);
static_assert(kFmtVersionV4 == kFormatVersion);
static_assert(kFmtVersionV5 == kPackedFormatVersion);
static_assert(kFmtV5BlockSize == PostingList::kBlockSize,
              "packed block granularity must match the block-max blocks");

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---------------------------------------------------------------------------
// Checksummed writer: accumulates CRC32C over everything written since the
// last EmitCrc(), which stamps the running checksum (itself excluded) and
// starts the next section.

class CrcWriter {
 public:
  explicit CrcWriter(std::FILE* f) : f_(f) {}

  Status WriteBytes(const void* data, size_t size) {
    if (size != 0 && std::fwrite(data, 1, size, f_) != size) {
      return Status::IOError("short write");
    }
    crc_ = common::Crc32cExtend(crc_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status WriteScalar(T value) {
    return WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(v.size()));
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  Status EmitCrc() {
    const uint32_t crc = crc_;
    crc_ = 0;
    if (std::fwrite(&crc, 1, sizeof(crc), f_) != sizeof(crc)) {
      return Status::IOError("short write");
    }
    return Status::Ok();
  }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

// ---------------------------------------------------------------------------
// Checksummed reader: mirrors CrcWriter. VerifyCrc() reads the stamped
// checksum and compares it against the running one BEFORE the caller uses
// the section's content.

class CrcReader {
 public:
  CrcReader(std::FILE* f, uint64_t file_size)
      : f_(f), file_size_(file_size) {}

  Status ReadBytes(void* data, size_t size) {
    if (size != 0 && std::fread(data, 1, size, f_) != size) {
      return Status::DataLoss("short read or truncated index file");
    }
    crc_ = common::Crc32cExtend(crc_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status ReadScalar(T* value) {
    return ReadBytes(value, sizeof(T));
  }

  // Reads a length-prefixed array, validating the declared length against
  // the bytes actually left in the file BEFORE allocating — a corrupt or
  // truncated header can therefore never trigger a multi-gigabyte resize
  // or an out-of-bounds read; it fails cleanly with DataLoss.
  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    uint64_t size = 0;
    GRAFT_RETURN_IF_ERROR(ReadScalar(&size));
    const long pos = std::ftell(f_);
    if (pos < 0) {
      return Status::IOError("ftell failed while reading index file");
    }
    const uint64_t remaining = file_size_ - static_cast<uint64_t>(pos);
    if (size > remaining / sizeof(T)) {
      return Status::DataLoss(
          "vector length exceeds remaining index file bytes");
    }
    v->resize(size);
    return ReadBytes(v->data(), size * sizeof(T));
  }

  Status VerifyCrc(const char* section) {
    const uint32_t computed = crc_;
    crc_ = 0;
    uint32_t stored = 0;
    if (std::fread(&stored, 1, sizeof(stored), f_) != sizeof(stored)) {
      return Status::DataLoss("index file truncated before checksum of " +
                              std::string(section));
    }
    if (stored != computed) {
      return Status::Corruption("checksum mismatch in " +
                                std::string(section));
    }
    return Status::Ok();
  }

 private:
  std::FILE* f_;
  uint64_t file_size_;
  uint32_t crc_ = 0;
};

// Upper bound used to reject corrupt counts whose payloads are validated
// element-by-element rather than as one block read.
constexpr uint64_t kSanityCap = uint64_t{1} << 36;

StatusOr<uint64_t> FileSize(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("fseek failed while sizing index file");
  }
  const long size = std::ftell(f);
  if (size < 0) {
    return Status::IOError("ftell failed while sizing index file");
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IOError("fseek failed while rewinding index file");
  }
  return static_cast<uint64_t>(size);
}

// Writes the full index image (v4, or the legacy v3 layout) to an
// already-open stream.
Status WriteIndexBody(const InvertedIndex& index, std::FILE* f,
                      char version) {
  CrcWriter w(f);
  // The magic+version prologue is verified by direct comparison on load,
  // not by CRC; reset the accumulator so section 1 starts after it.
  if (std::fwrite(kMagicPrefix, 1, sizeof(kMagicPrefix), f) !=
          sizeof(kMagicPrefix) ||
      std::fwrite(&version, 1, 1, f) != 1) {
    return Status::IOError("short write");
  }

  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.doc_count()));
  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.total_words()));
  GRAFT_RETURN_IF_ERROR(w.WriteVector(index.doc_lengths()));
  GRAFT_RETURN_IF_ERROR(w.EmitCrc());
  GRAFT_FAILPOINT_WRITE(g_fp_save_header, f);

  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.term_count()));
  GRAFT_RETURN_IF_ERROR(w.EmitCrc());

  std::vector<uint32_t> scratch_start;
  std::vector<uint32_t> scratch_tf;
  std::vector<uint32_t> scratch_len;
  for (TermId term = 0; term < index.term_count(); ++term) {
    GRAFT_FAILPOINT_WRITE(g_fp_save_term, f);
    const std::string& text = index.TermText(term);
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint32_t>(static_cast<uint32_t>(text.size())));
    GRAFT_RETURN_IF_ERROR(w.WriteBytes(text.data(), text.size()));
    const PostingList& list = index.postings(term);
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_docs()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_tfs()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_offset_starts()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_encoded_offsets()));
    if (version == kFormatVersion) {
      if (index.has_block_max()) {
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_start()));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_tf()));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_doc_length()));
      } else {
        // Saving an index that was loaded from a v3 file: upgrade it by
        // recomputing the metadata on the fly.
        list.ComputeBlockMax(index.doc_lengths(), &scratch_start,
                             &scratch_tf, &scratch_len);
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_start));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_tf));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_len));
      }
    }
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint64_t>(list.collection_frequency()));
    GRAFT_RETURN_IF_ERROR(w.EmitCrc());
  }
  return Status::Ok();
}

// Fsyncs the directory containing `path` so the rename itself is durable
// (a crash after rename but before the directory hits disk could otherwise
// resurrect the old generation — acceptable — or lose the entry on some
// filesystems — not acceptable).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("directory fsync failed: " + dir);
  }
  return Status::Ok();
}

// The fallible middle of every Save, factored out so the caller can unlink
// the temp file on ANY failure path with a single cleanup site. `body`
// writes the complete file image; the crash-safe envelope (tmp file,
// fsync, rename, dirsync) is identical for every format version.
Status WriteTempAndRename(const std::function<Status(std::FILE*)>& body,
                          const std::string& tmp_path,
                          const std::string& path) {
  FilePtr file(std::fopen(tmp_path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + tmp_path);
  }
  std::FILE* f = file.get();
  GRAFT_FAILPOINT_WRITE(g_fp_save_open_tmp, f);
  GRAFT_RETURN_IF_ERROR(body(f));
  GRAFT_FAILPOINT_WRITE(g_fp_save_before_sync, f);
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failed: " + tmp_path);
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::IOError("fsync failed: " + tmp_path);
  }
  file.reset();  // close before rename
  GRAFT_FAILPOINT(g_fp_save_before_rename);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp_path + " -> " + path);
  }
  // From here the new generation is visible; only durability of the
  // directory entry remains.
  GRAFT_FAILPOINT(g_fp_save_before_dirsync);
  return SyncParentDir(path);
}

// ---------------------------------------------------------------------------
// v5 sectioned layout (normative spec: docs/index-format.md).
//
// The file is canonical: sections appear in FmtV5Section order, each
// starting on an 8-byte boundary (zero padding between the previous
// section's CRC and the next section; the loader verifies the pad bytes),
// with the section table's {offset, length} pairs patched in by fseek once
// the section positions are known. Canonical placement means the loader
// can account for EVERY byte of the file — prologue by direct comparison,
// table and sections by CRC32C, padding by zero check — which is what
// keeps the exhaustive bit-flip corruption fuzz meaningful for v5.

constexpr uint64_t kV5PrologueBytes = 8;
constexpr uint64_t kV5TableBytes =
    4 + uint64_t{kFmtV5SectionCount} * 16 + 4;  // count + entries + crc
constexpr uint64_t kV5FirstSectionOffset = kV5PrologueBytes + kV5TableBytes;
static_assert(kV5FirstSectionOffset % 8 == 0,
              "the first section must start 8-aligned");

constexpr uint64_t Align8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

struct V5SectionRecord {
  uint64_t offset = 0;
  uint64_t length = 0;
};

// Positioned checksummed writer for v5 sections. Unlike CrcWriter, lengths
// live in the section table rather than as per-array prefixes, so this
// tracks the absolute file position to place sections canonically.
class V5Writer {
 public:
  V5Writer(std::FILE* f, uint64_t pos) : f_(f), pos_(pos) {}

  Status BeginSection(V5SectionRecord* rec) {
    static constexpr uint8_t kZeros[8] = {0};
    const uint64_t aligned = Align8(pos_);
    if (aligned != pos_) {
      GRAFT_RETURN_IF_ERROR(RawWrite(kZeros, aligned - pos_));
    }
    crc_ = 0;
    current_ = rec;
    current_->offset = pos_;
    return Status::Ok();
  }

  Status Write(const void* data, size_t size) {
    crc_ = common::Crc32cExtend(crc_, data, size);
    return RawWrite(data, size);
  }

  template <typename T>
  Status WriteScalar(T value) {
    return Write(&value, sizeof(T));
  }

  Status EndSection() {
    current_->length = pos_ - current_->offset;
    const uint32_t crc = crc_;
    return RawWrite(&crc, sizeof(crc));
  }

 private:
  Status RawWrite(const void* data, size_t size) {
    if (size != 0 && std::fwrite(data, 1, size, f_) != size) {
      return Status::IOError("short write");
    }
    pos_ += size;
    return Status::Ok();
  }

  std::FILE* f_;
  uint64_t pos_;
  uint32_t crc_ = 0;
  V5SectionRecord* current_ = nullptr;
};

// Per-term packing plan: block headers and term records computed in one
// dry pass (no I/O) so every section knows its sizes before writing.
struct V5Plan {
  std::vector<TermMetaV5> metas;
  std::vector<BlockHeaderV5> headers;
  uint64_t payload_bytes = 0;
  uint64_t offsets_bytes = 0;
};

Status BuildV5Plan(const InvertedIndex& index, V5Plan* plan) {
  plan->metas.resize(index.term_count());
  for (TermId t = 0; t < index.term_count(); ++t) {
    const PostingList& list = index.postings(t);
    const std::vector<DocId>& docs = list.raw_docs();
    const std::vector<uint32_t>& tfs = list.raw_tfs();
    const std::vector<uint64_t>& starts = list.raw_offset_starts();
    TermMetaV5& m = plan->metas[t];
    m.doc_count = docs.size();
    m.collection_frequency = list.collection_frequency();
    m.block_begin = plan->headers.size();
    m.payload_begin = plan->payload_bytes;
    m.offsets_begin = plan->offsets_bytes;
    m.offsets_length = list.raw_encoded_offsets().size();
    if (m.offsets_length > UINT32_MAX) {
      return Status::Internal(
          "term position blob exceeds the 4 GiB a v5 block header can "
          "address: " + index.TermText(t));
    }
    uint64_t term_payload = 0;
    for (size_t begin = 0; begin < docs.size();
         begin += kFmtV5BlockSize) {
      const size_t end = std::min(docs.size(), begin + kFmtV5BlockSize);
      const size_t n = end - begin;
      const uint32_t base = begin == 0 ? 0 : docs[begin - 1] + 1;
      uint32_t max_gap = 0;
      uint32_t max_tf1 = 0;
      uint32_t max_len = 0;
      for (size_t i = begin; i < end; ++i) {
        const uint32_t gap =
            i == begin ? docs[i] - base : docs[i] - docs[i - 1] - 1;
        max_gap = std::max(max_gap, gap);
        max_tf1 = std::max(max_tf1, tfs[i] - 1);
        max_len = std::max(
            max_len, static_cast<uint32_t>(starts[i + 1] - starts[i]));
      }
      if (term_payload > UINT32_MAX) {
        return Status::Internal(
            "term payload exceeds the 4 GiB a v5 block header can "
            "address: " + index.TermText(t));
      }
      BlockHeaderV5 h;
      h.last_doc = docs[end - 1];
      h.payload_offset = static_cast<uint32_t>(term_payload);
      h.offsets_base = static_cast<uint32_t>(starts[begin]);
      h.doc_bits = static_cast<uint8_t>(common::BitsFor(max_gap));
      h.tf_bits = static_cast<uint8_t>(common::BitsFor(max_tf1));
      h.off_bits = static_cast<uint8_t>(common::BitsFor(max_len));
      h.reserved = 0;
      plan->headers.push_back(h);
      term_payload += common::PackedBytes(n, h.doc_bits) +
                      common::PackedBytes(n, h.tf_bits) +
                      common::PackedBytes(n, h.off_bits);
    }
    plan->payload_bytes += term_payload;
    plan->offsets_bytes += m.offsets_length;
  }
  return Status::Ok();
}

Status WriteIndexBodyV5(const InvertedIndex& index, std::FILE* f) {
  V5Plan plan;
  GRAFT_RETURN_IF_ERROR(BuildV5Plan(index, &plan));

  char prologue[8];
  std::memcpy(prologue, kMagicPrefix, sizeof(kMagicPrefix));
  prologue[7] = kPackedFormatVersion;
  const std::vector<uint8_t> placeholder(kV5TableBytes, 0);
  if (std::fwrite(prologue, 1, sizeof(prologue), f) != sizeof(prologue) ||
      std::fwrite(placeholder.data(), 1, placeholder.size(), f) !=
          placeholder.size()) {
    return Status::IOError("short write");
  }

  V5Writer w(f, kV5FirstSectionOffset);
  V5SectionRecord recs[kFmtV5SectionCount];

  // kCollection.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[0]));
  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.doc_count()));
  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.total_words()));
  GRAFT_RETURN_IF_ERROR(
      w.WriteScalar<uint64_t>(index.doc_lengths().size()));
  GRAFT_RETURN_IF_ERROR(w.Write(index.doc_lengths().data(),
                                index.doc_lengths().size() * 4));
  GRAFT_RETURN_IF_ERROR(w.EndSection());
  GRAFT_FAILPOINT_WRITE(g_fp_save_header, f);

  // kTermDict.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[1]));
  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.term_count()));
  for (TermId t = 0; t < index.term_count(); ++t) {
    const std::string& text = index.TermText(t);
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint32_t>(static_cast<uint32_t>(text.size())));
    GRAFT_RETURN_IF_ERROR(w.Write(text.data(), text.size()));
  }
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // kTermMeta.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[2]));
  GRAFT_RETURN_IF_ERROR(w.Write(plan.metas.data(),
                                plan.metas.size() * kFmtV5TermMetaBytes));
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // kBlockHeaders.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[3]));
  GRAFT_RETURN_IF_ERROR(w.Write(
      plan.headers.data(), plan.headers.size() * kFmtV5BlockHeaderBytes));
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // kPayload: per block, the three packed columns (doc gaps, tf-1,
  // position-varint byte lengths), each starting on a byte boundary.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[4]));
  uint32_t vals[kFmtV5BlockSize];
  uint8_t packed[common::PackedBytes(kFmtV5BlockSize, 32)];
  for (TermId t = 0; t < index.term_count(); ++t) {
    GRAFT_FAILPOINT_WRITE(g_fp_save_term, f);
    const PostingList& list = index.postings(t);
    const std::vector<DocId>& docs = list.raw_docs();
    const std::vector<uint32_t>& tfs = list.raw_tfs();
    const std::vector<uint64_t>& starts = list.raw_offset_starts();
    const TermMetaV5& m = plan.metas[t];
    for (size_t begin = 0; begin < docs.size();
         begin += kFmtV5BlockSize) {
      const size_t end = std::min(docs.size(), begin + kFmtV5BlockSize);
      const size_t n = end - begin;
      const BlockHeaderV5& h =
          plan.headers[m.block_begin + begin / kFmtV5BlockSize];
      const uint32_t base = begin == 0 ? 0 : docs[begin - 1] + 1;
      for (size_t i = begin; i < end; ++i) {
        vals[i - begin] =
            i == begin ? docs[i] - base : docs[i] - docs[i - 1] - 1;
      }
      common::PackInts(vals, n, h.doc_bits, packed);
      GRAFT_RETURN_IF_ERROR(w.Write(packed, common::PackedBytes(n, h.doc_bits)));
      for (size_t i = begin; i < end; ++i) {
        vals[i - begin] = tfs[i] - 1;
      }
      common::PackInts(vals, n, h.tf_bits, packed);
      GRAFT_RETURN_IF_ERROR(w.Write(packed, common::PackedBytes(n, h.tf_bits)));
      for (size_t i = begin; i < end; ++i) {
        vals[i - begin] = static_cast<uint32_t>(starts[i + 1] - starts[i]);
      }
      common::PackInts(vals, n, h.off_bits, packed);
      GRAFT_RETURN_IF_ERROR(w.Write(packed, common::PackedBytes(n, h.off_bits)));
    }
  }
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // kOffsets: each term's position-varint blob, byte-identical to v4.
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[5]));
  for (TermId t = 0; t < index.term_count(); ++t) {
    const std::vector<uint8_t>& encoded =
        index.postings(t).raw_encoded_offsets();
    GRAFT_RETURN_IF_ERROR(w.Write(encoded.data(), encoded.size()));
  }
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // kFrontiers: the PR 5 block-max Pareto frontiers, verbatim (or computed
  // on the fly when saving an index loaded from a v3 file).
  GRAFT_RETURN_IF_ERROR(w.BeginSection(&recs[6]));
  std::vector<uint32_t> scratch_start;
  std::vector<uint32_t> scratch_tf;
  std::vector<uint32_t> scratch_len;
  for (TermId t = 0; t < index.term_count(); ++t) {
    const PostingList& list = index.postings(t);
    std::span<const uint32_t> fs;
    std::span<const uint32_t> ftf;
    std::span<const uint32_t> flen;
    if (index.has_block_max()) {
      fs = list.raw_frontier_start();
      ftf = list.raw_frontier_tf();
      flen = list.raw_frontier_doc_length();
    } else {
      list.ComputeBlockMax(index.doc_lengths(), &scratch_start, &scratch_tf,
                           &scratch_len);
      fs = scratch_start;
      ftf = scratch_tf;
      flen = scratch_len;
    }
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint32_t>(static_cast<uint32_t>(ftf.size())));
    GRAFT_RETURN_IF_ERROR(w.Write(fs.data(), fs.size() * 4));
    GRAFT_RETURN_IF_ERROR(w.Write(ftf.data(), ftf.size() * 4));
    GRAFT_RETURN_IF_ERROR(w.Write(flen.data(), flen.size() * 4));
  }
  GRAFT_RETURN_IF_ERROR(w.EndSection());

  // Patch the section table now that offsets and lengths are known.
  std::vector<uint8_t> table(kV5TableBytes, 0);
  const uint32_t count = kFmtV5SectionCount;
  std::memcpy(table.data(), &count, 4);
  for (uint32_t i = 0; i < kFmtV5SectionCount; ++i) {
    std::memcpy(table.data() + 4 + i * 16, &recs[i].offset, 8);
    std::memcpy(table.data() + 4 + i * 16 + 8, &recs[i].length, 8);
  }
  const uint32_t table_crc =
      common::Crc32cExtend(0, table.data(), kV5TableBytes - 4);
  std::memcpy(table.data() + kV5TableBytes - 4, &table_crc, 4);
  if (std::fseek(f, static_cast<long>(kV5PrologueBytes), SEEK_SET) != 0) {
    return Status::IOError("fseek failed while patching section table");
  }
  if (std::fwrite(table.data(), 1, table.size(), f) != table.size()) {
    return Status::IOError("short write");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// v5 parsing: one validation pass shared by the eager and mapped loaders.
// Everything is verified BEFORE any content is trusted — table CRC, every
// section CRC, canonical placement with zero padding, then structural
// invariants (contiguous term records, monotone doc ids, in-range offsets).

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct V5FrontierView {
  const uint32_t* start = nullptr;  // blocks + 1 delimiters
  const uint32_t* tf = nullptr;
  const uint32_t* len = nullptr;
  uint32_t n_pts = 0;
};

struct V5Parsed {
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  const uint32_t* doc_lengths = nullptr;
  std::vector<std::string_view> terms;
  const TermMetaV5* metas = nullptr;
  const BlockHeaderV5* headers = nullptr;
  uint64_t total_blocks = 0;
  const uint8_t* payload = nullptr;
  uint64_t payload_len = 0;
  const uint8_t* offsets = nullptr;
  uint64_t offsets_len = 0;
  std::vector<V5FrontierView> frontiers;
};

Status ParseV5(const uint8_t* data, uint64_t size, V5Parsed* out) {
  // The caller has verified the 8-byte prologue.
  if (size < kV5FirstSectionOffset) {
    return Status::DataLoss("index file truncated inside the section table");
  }
  const uint8_t* table = data + kV5PrologueBytes;
  if (common::Crc32cExtend(0, table, kV5TableBytes - 4) !=
      LoadU32(table + kV5TableBytes - 4)) {
    return Status::Corruption("checksum mismatch in section table");
  }
  if (LoadU32(table) != kFmtV5SectionCount) {
    return Status::Corruption("unexpected section count");
  }
  V5SectionRecord recs[kFmtV5SectionCount];
  uint64_t expect = kV5FirstSectionOffset;
  for (uint32_t i = 0; i < kFmtV5SectionCount; ++i) {
    recs[i].offset = LoadU64(table + 4 + i * 16);
    recs[i].length = LoadU64(table + 4 + i * 16 + 8);
    if (recs[i].offset != Align8(expect)) {
      return Status::Corruption("non-canonical section placement");
    }
    if (recs[i].offset > size || recs[i].length > size ||
        recs[i].offset + recs[i].length + 4 > size) {
      return Status::DataLoss("section extends past end of index file");
    }
    // Alignment padding sits between the previous section's CRC and this
    // section; it must be zero so every file byte stays accounted for.
    for (uint64_t b = expect; b < recs[i].offset; ++b) {
      if (data[b] != 0) {
        return Status::Corruption("nonzero section padding");
      }
    }
    expect = recs[i].offset + recs[i].length + 4;
  }
  if (expect != size) {
    return Status::Corruption("trailing bytes after the last section");
  }
  static const char* kSectionNames[kFmtV5SectionCount] = {
      "collection", "term dictionary", "term metadata", "block headers",
      "payload",    "offsets",         "frontiers"};
  for (uint32_t i = 0; i < kFmtV5SectionCount; ++i) {
    const uint8_t* s = data + recs[i].offset;
    if (common::Crc32cExtend(0, s, recs[i].length) !=
        LoadU32(s + recs[i].length)) {
      return Status::Corruption(std::string("checksum mismatch in section ") +
                                kSectionNames[i]);
    }
  }

  // kCollection.
  {
    const auto& rec = recs[static_cast<size_t>(FmtV5Section::kCollection)];
    const uint8_t* s = data + rec.offset;
    if (rec.length < 24) {
      return Status::Corruption("collection section too short");
    }
    out->doc_count = LoadU64(s);
    out->total_words = LoadU64(s + 8);
    const uint64_t n = LoadU64(s + 16);
    if (n != out->doc_count || n > (rec.length - 24) / 4 ||
        24 + n * 4 != rec.length) {
      return Status::Corruption("doc length array does not match doc count");
    }
    out->doc_lengths = reinterpret_cast<const uint32_t*>(s + 24);
  }

  // kTermDict.
  uint64_t term_count = 0;
  {
    const auto& rec = recs[static_cast<size_t>(FmtV5Section::kTermDict)];
    const uint8_t* s = data + rec.offset;
    if (rec.length < 8) {
      return Status::Corruption("term dictionary section too short");
    }
    term_count = LoadU64(s);
    if (term_count > kSanityCap || term_count > rec.length) {
      return Status::Corruption("implausible term count");
    }
    out->terms.reserve(term_count);
    uint64_t pos = 8;
    for (uint64_t i = 0; i < term_count; ++i) {
      if (pos + 4 > rec.length) {
        return Status::Corruption("term dictionary ends mid-record");
      }
      const uint32_t text_len = LoadU32(s + pos);
      pos += 4;
      if (text_len > (1u << 20) || pos + text_len > rec.length) {
        return Status::Corruption("implausible term length");
      }
      out->terms.emplace_back(reinterpret_cast<const char*>(s + pos),
                              text_len);
      pos += text_len;
    }
    if (pos != rec.length) {
      return Status::Corruption("trailing bytes in term dictionary");
    }
  }

  // kTermMeta / kBlockHeaders.
  {
    const auto& rec = recs[static_cast<size_t>(FmtV5Section::kTermMeta)];
    if (rec.length != term_count * kFmtV5TermMetaBytes) {
      return Status::Corruption(
          "term metadata does not match term dictionary");
    }
    out->metas = reinterpret_cast<const TermMetaV5*>(data + rec.offset);
  }
  {
    const auto& rec =
        recs[static_cast<size_t>(FmtV5Section::kBlockHeaders)];
    if (rec.length % kFmtV5BlockHeaderBytes != 0) {
      return Status::Corruption("block header section not a header multiple");
    }
    out->headers = reinterpret_cast<const BlockHeaderV5*>(data + rec.offset);
    out->total_blocks = rec.length / kFmtV5BlockHeaderBytes;
  }
  out->payload =
      data + recs[static_cast<size_t>(FmtV5Section::kPayload)].offset;
  out->payload_len =
      recs[static_cast<size_t>(FmtV5Section::kPayload)].length;
  out->offsets =
      data + recs[static_cast<size_t>(FmtV5Section::kOffsets)].offset;
  out->offsets_len =
      recs[static_cast<size_t>(FmtV5Section::kOffsets)].length;

  // Per-term structural validation: records must tile the block-header,
  // payload and offsets sections exactly, block headers must be sane and
  // doc ids monotone in range.
  uint64_t running_block = 0;
  uint64_t running_payload = 0;
  uint64_t running_offsets = 0;
  for (uint64_t t = 0; t < term_count; ++t) {
    const TermMetaV5& m = out->metas[t];
    if (m.doc_count == 0 || m.doc_count > out->doc_count) {
      return Status::Corruption("implausible term document count");
    }
    if (m.collection_frequency < m.doc_count) {
      return Status::Corruption("collection frequency below document count");
    }
    const uint64_t blocks =
        (m.doc_count + kFmtV5BlockSize - 1) / kFmtV5BlockSize;
    if (m.block_begin != running_block ||
        m.payload_begin != running_payload ||
        m.offsets_begin != running_offsets) {
      return Status::Corruption("term records do not tile the sections");
    }
    running_block += blocks;
    if (running_block > out->total_blocks) {
      return Status::Corruption("term block range exceeds header section");
    }
    uint64_t term_payload = 0;
    uint32_t prev_last = 0;
    for (uint64_t b = 0; b < blocks; ++b) {
      const BlockHeaderV5& h = out->headers[m.block_begin + b];
      const size_t bn = static_cast<size_t>(
          std::min<uint64_t>(kFmtV5BlockSize, m.doc_count - b * kFmtV5BlockSize));
      if (h.reserved != 0 || h.doc_bits > 32 || h.tf_bits > 32 ||
          h.off_bits > 32) {
        return Status::Corruption("implausible block header");
      }
      if (h.payload_offset != term_payload) {
        return Status::Corruption("block payload offsets do not tile");
      }
      if ((b > 0 && h.last_doc <= prev_last) ||
          h.last_doc >= out->doc_count) {
        return Status::Corruption("block last_doc not monotone in range");
      }
      if (h.offsets_base > m.offsets_length ||
          (b == 0 && h.offsets_base != 0)) {
        return Status::Corruption("block offsets base out of range");
      }
      prev_last = h.last_doc;
      term_payload += common::PackedBytes(bn, h.doc_bits) +
                      common::PackedBytes(bn, h.tf_bits) +
                      common::PackedBytes(bn, h.off_bits);
    }
    running_payload += term_payload;
    running_offsets += m.offsets_length;
    if (running_payload > out->payload_len ||
        running_offsets > out->offsets_len) {
      return Status::Corruption("term payload exceeds its section");
    }
  }
  if (running_block != out->total_blocks ||
      running_payload != out->payload_len ||
      running_offsets != out->offsets_len) {
    return Status::Corruption("sections larger than the term records claim");
  }

  // kFrontiers.
  {
    const auto& rec = recs[static_cast<size_t>(FmtV5Section::kFrontiers)];
    const uint8_t* s = data + rec.offset;
    out->frontiers.resize(term_count);
    uint64_t pos = 0;
    for (uint64_t t = 0; t < term_count; ++t) {
      const uint64_t blocks = (out->metas[t].doc_count + kFmtV5BlockSize - 1) /
                              kFmtV5BlockSize;
      if (pos + 4 > rec.length) {
        return Status::Corruption("frontier section ends mid-record");
      }
      const uint32_t n_pts = LoadU32(s + pos);
      pos += 4;
      const uint64_t need = (blocks + 1 + uint64_t{2} * n_pts) * 4;
      if (need > rec.length - pos) {
        return Status::Corruption("frontier record exceeds its section");
      }
      V5FrontierView& v = out->frontiers[t];
      v.n_pts = n_pts;
      v.start = reinterpret_cast<const uint32_t*>(s + pos);
      pos += (blocks + 1) * 4;
      v.tf = reinterpret_cast<const uint32_t*>(s + pos);
      pos += uint64_t{n_pts} * 4;
      v.len = reinterpret_cast<const uint32_t*>(s + pos);
      pos += uint64_t{n_pts} * 4;
      if (v.start[0] != 0 || v.start[blocks] != n_pts) {
        return Status::Corruption(
            "block frontier arrays do not match posting block count");
      }
      for (uint64_t b = 0; b < blocks; ++b) {
        if (v.start[b] >= v.start[b + 1]) {
          return Status::Corruption(
              "block frontier delimiters are not strictly increasing");
        }
      }
    }
    if (pos != rec.length) {
      return Status::Corruption("trailing bytes in frontier section");
    }
  }
  return Status::Ok();
}

// Shared tail of the v5 loaders: builds the InvertedIndex from a parsed
// region, either materializing every list (eager) or installing zero-copy
// packed views plus the decoded-block cache (mapped).
StatusOr<InvertedIndex> BuildIndexFromV5(common::MmapRegion region,
                                         bool eager,
                                         MappedLoadOptions options) {
  V5Parsed p;
  GRAFT_RETURN_IF_ERROR(ParseV5(region.data(), region.size(), &p));

  InvertedIndex index;
  std::vector<uint32_t> doc_lengths(p.doc_count);
  std::memcpy(doc_lengths.data(), p.doc_lengths, p.doc_count * 4);
  index.SetDocLengths(std::move(doc_lengths), p.total_words);

  std::shared_ptr<BlockCache> cache;
  uint64_t generation = 0;
  if (!eager) {
    cache = options.cache != nullptr
                ? options.cache
                : std::make_shared<BlockCache>(options.private_cache_bytes);
    generation = BlockCache::NextGeneration();
  }

  uint32_t scratch[kFmtV5BlockSize];
  for (uint64_t t = 0; t < p.terms.size(); ++t) {
    const TermId term = index.InternTerm(p.terms[t]);
    if (term != t) {
      return Status::Corruption("duplicate term in index file: " +
                                std::string(p.terms[t]));
    }
    const TermMetaV5& m = p.metas[t];
    PostingList* list = index.mutable_postings(term);
    if (eager) {
      const BlockHeaderV5* hs = p.headers + m.block_begin;
      const uint8_t* payload = p.payload + m.payload_begin;
      const size_t n = static_cast<size_t>(m.doc_count);
      std::vector<DocId> docs(n);
      std::vector<uint32_t> tfs(n);
      std::vector<uint64_t> starts(n + 1);
      starts[0] = 0;
      for (size_t begin = 0, b = 0; begin < n;
           begin += kFmtV5BlockSize, ++b) {
        const size_t bn = std::min(kFmtV5BlockSize, n - begin);
        const BlockHeaderV5& h = hs[b];
        const uint8_t* pp = payload + h.payload_offset;
        common::UnpackInts(pp, bn, h.doc_bits, scratch);
        uint32_t running = b == 0 ? 0 : hs[b - 1].last_doc + 1;
        for (size_t i = 0; i < bn; ++i) {
          running += scratch[i] + (i > 0 ? 1 : 0);
          docs[begin + i] = running;
        }
        if (docs[begin + bn - 1] != h.last_doc) {
          return Status::Corruption(
              "block payload disagrees with its header last_doc");
        }
        pp += common::PackedBytes(bn, h.doc_bits);
        common::UnpackInts(pp, bn, h.tf_bits, scratch);
        for (size_t i = 0; i < bn; ++i) {
          tfs[begin + i] = scratch[i] + 1;
        }
        pp += common::PackedBytes(bn, h.tf_bits);
        common::UnpackInts(pp, bn, h.off_bits, scratch);
        for (size_t i = 0; i < bn; ++i) {
          starts[begin + i + 1] = starts[begin + i] + scratch[i];
        }
      }
      if (starts[n] != m.offsets_length) {
        return Status::Corruption(
            "packed offset lengths disagree with the offsets blob");
      }
      std::vector<uint8_t> encoded(
          p.offsets + m.offsets_begin,
          p.offsets + m.offsets_begin + m.offsets_length);
      list->RestoreFrom(std::move(docs), std::move(tfs), std::move(starts),
                        std::move(encoded), m.collection_frequency);
    } else {
      PackedPostings packed;
      packed.headers = p.headers + m.block_begin;
      packed.payload = p.payload + m.payload_begin;
      packed.offsets = p.offsets + m.offsets_begin;
      packed.offsets_length = m.offsets_length;
      packed.doc_count = m.doc_count;
      packed.generation = generation;
      packed.term = static_cast<uint32_t>(term);
      packed.cache = cache.get();
      list->RestorePacked(packed, m.collection_frequency);
    }
    const V5FrontierView& fv = p.frontiers[t];
    const uint64_t blocks =
        (m.doc_count + kFmtV5BlockSize - 1) / kFmtV5BlockSize;
    list->RestoreBlockMax(
        std::vector<uint32_t>(fv.start, fv.start + blocks + 1),
        std::vector<uint32_t>(fv.tf, fv.tf + fv.n_pts),
        std::vector<uint32_t>(fv.len, fv.len + fv.n_pts));
  }
  index.set_has_block_max(true);
  if (!eager) {
    index.AttachPackedStorage(
        std::make_shared<common::MmapRegion>(std::move(region)),
        std::move(cache), generation);
  }
  GRAFT_FAILPOINT(g_fp_load_verify);
  return index;
}

// Opens `path`, verifies the v5 prologue, and hands off to BuildIndexFromV5.
StatusOr<InvertedIndex> LoadIndexV5(const std::string& path, bool eager,
                                    MappedLoadOptions options) {
  GRAFT_ASSIGN_OR_RETURN(common::MmapRegion region,
                         common::MmapRegion::Open(path));
  if (region.size() < 8) {
    return Status::DataLoss("index file shorter than its magic: " + path);
  }
  if (std::memcmp(region.data(), kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::DataLoss("bad magic; not a GRAFT index file: " + path);
  }
  if (region.data()[7] != static_cast<uint8_t>(kPackedFormatVersion)) {
    return Status::VersionMismatch(
        std::string("not a v5 index (version byte '") +
        static_cast<char>(region.data()[7]) + "'): " + path);
  }
  return BuildIndexFromV5(std::move(region), eager, std::move(options));
}

}  // namespace

namespace {

Status SaveIndexWithBody(const std::function<Status(std::FILE*)>& body,
                         const std::string& path) {
  // Deterministic temp name: a leftover from a crashed writer is simply
  // overwritten by the next save, so torn temp files never accumulate.
  const std::string tmp_path = path + ".tmp";
  const Status status = WriteTempAndRename(body, tmp_path, path);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());  // best effort; `path` is untouched
  }
  return status;
}

Status SaveIndexVersioned(const InvertedIndex& index, const std::string& path,
                          char version) {
  if (index.is_packed()) {
    return Status::FailedPrecondition(
        "cannot save a mapped (packed) index; eager-load it first: " + path);
  }
  return SaveIndexWithBody(
      [&index, version](std::FILE* f) {
        return WriteIndexBody(index, f, version);
      },
      path);
}

}  // namespace

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  return SaveIndexVersioned(index, path, kFormatVersion);
}

Status SaveIndexV3(const InvertedIndex& index, const std::string& path) {
  return SaveIndexVersioned(index, path, kLegacyFormatVersion);
}

Status SaveIndexV5(const InvertedIndex& index, const std::string& path) {
  if (index.is_packed()) {
    return Status::FailedPrecondition(
        "cannot save a mapped (packed) index; eager-load it first: " + path);
  }
  return SaveIndexWithBody(
      [&index](std::FILE* f) { return WriteIndexBodyV5(index, f); }, path);
}

StatusOr<InvertedIndex> LoadIndex(const std::string& path) {
  GRAFT_FAILPOINT(g_fp_load_open);
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::FILE* f = file.get();

  GRAFT_ASSIGN_OR_RETURN(const uint64_t file_size, FileSize(f));

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    return Status::DataLoss("index file shorter than its magic: " + path);
  }
  if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::DataLoss("bad magic; not a GRAFT index file: " + path);
  }
  if (magic[7] == kPackedFormatVersion) {
    // v5 is a different shape entirely; the sectioned loader handles it
    // (eagerly — LoadIndexMapped is the zero-copy entry point).
    file.reset();
    return LoadIndexV5(path, /*eager=*/true, MappedLoadOptions{});
  }
  if (magic[7] != kFormatVersion && magic[7] != kLegacyFormatVersion) {
    return Status::VersionMismatch(
        std::string("unsupported index format version '") + magic[7] +
        "' (this build reads versions '" + kLegacyFormatVersion + "', '" +
        kFormatVersion + "' and '" + kPackedFormatVersion + "'): " + path);
  }
  const bool has_block_max_sections = magic[7] == kFormatVersion;

  CrcReader r(f, file_size);
  InvertedIndex index;
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&doc_count));
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&total_words));
  std::vector<uint32_t> doc_lengths;
  GRAFT_RETURN_IF_ERROR(r.ReadVector(&doc_lengths));
  GRAFT_RETURN_IF_ERROR(r.VerifyCrc("header section"));
  if (doc_lengths.size() != doc_count) {
    return Status::Corruption("doc length array does not match doc count");
  }
  index.SetDocLengths(std::move(doc_lengths), total_words);

  uint64_t term_count = 0;
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&term_count));
  GRAFT_RETURN_IF_ERROR(r.VerifyCrc("term directory"));
  if (term_count > kSanityCap || term_count > file_size) {
    return Status::Corruption("implausible term count");
  }
  for (uint64_t i = 0; i < term_count; ++i) {
    uint32_t text_len = 0;
    GRAFT_RETURN_IF_ERROR(r.ReadScalar(&text_len));
    if (text_len > (1u << 20)) {
      return Status::Corruption("implausible term length");
    }
    std::string text(text_len, '\0');
    GRAFT_RETURN_IF_ERROR(r.ReadBytes(text.data(), text_len));

    std::vector<DocId> docs;
    std::vector<uint32_t> tfs;
    std::vector<uint64_t> starts;
    std::vector<uint8_t> encoded;
    std::vector<uint32_t> frontier_start;
    std::vector<uint32_t> frontier_tf;
    std::vector<uint32_t> frontier_len;
    uint64_t total_positions = 0;
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&docs));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&tfs));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&starts));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&encoded));
    if (has_block_max_sections) {
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_start));
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_tf));
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_len));
    }
    GRAFT_RETURN_IF_ERROR(r.ReadScalar(&total_positions));
    // Verify the section's checksum BEFORE mutating the index with its
    // content — a term record either enters the index intact or not at
    // all.
    GRAFT_RETURN_IF_ERROR(
        r.VerifyCrc(("term record " + std::to_string(i)).c_str()));
    if (tfs.size() != docs.size()) {
      return Status::Corruption("tf array does not match doc array");
    }
    if (starts.size() != docs.size() + 1 ||
        (!starts.empty() && starts.back() != encoded.size())) {
      return Status::Corruption("offset index does not match encoded bytes");
    }
    if (has_block_max_sections) {
      // The frontier section must be structurally coherent before
      // RestoreBlockMax installs it: one delimiter run per posting block,
      // monotone with at least one point per (non-empty) block, and the
      // two point arrays exactly as long as the last delimiter says.
      const uint64_t expected_blocks =
          (docs.size() + PostingList::kBlockSize - 1) /
          PostingList::kBlockSize;
      if (frontier_start.size() != expected_blocks + 1 ||
          frontier_start.front() != 0 ||
          frontier_start.back() != frontier_tf.size() ||
          frontier_tf.size() != frontier_len.size()) {
        return Status::Corruption(
            "block frontier arrays do not match posting block count");
      }
      for (size_t b = 0; b < expected_blocks; ++b) {
        if (frontier_start[b] >= frontier_start[b + 1]) {
          return Status::Corruption(
              "block frontier delimiters are not strictly increasing");
        }
      }
    }
    const TermId term = index.InternTerm(text);
    if (term != i) {
      return Status::Corruption("duplicate term in index file: " + text);
    }
    index.mutable_postings(term)->RestoreFrom(
        std::move(docs), std::move(tfs), std::move(starts),
        std::move(encoded), total_positions);
    if (has_block_max_sections) {
      index.mutable_postings(term)->RestoreBlockMax(
          std::move(frontier_start), std::move(frontier_tf),
          std::move(frontier_len));
    }
  }
  index.set_has_block_max(has_block_max_sections);
  GRAFT_FAILPOINT(g_fp_load_verify);
  return index;
}

StatusOr<InvertedIndex> LoadIndexMapped(const std::string& path,
                                        MappedLoadOptions options) {
  GRAFT_FAILPOINT(g_fp_load_open);
  // Sniff the version byte: v3/v4 files have no packed sections, so a
  // mapped load of one transparently falls back to the eager path.
  {
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr) {
      return Status::IOError("cannot open for read: " + path);
    }
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic)) {
      return Status::DataLoss("index file shorter than its magic: " + path);
    }
    if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
      return Status::DataLoss("bad magic; not a GRAFT index file: " + path);
    }
    if (magic[7] == kFormatVersion || magic[7] == kLegacyFormatVersion) {
      file.reset();
      return LoadIndex(path);
    }
  }
  return LoadIndexV5(path, /*eager=*/false, std::move(options));
}

}  // namespace graft::index
