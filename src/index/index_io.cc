#include "index/index_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace graft::index {

namespace {

GRAFT_DEFINE_FAILPOINT(g_fp_save_open_tmp, "index_io.save.open_tmp");
GRAFT_DEFINE_FAILPOINT(g_fp_save_header, "index_io.save.header");
GRAFT_DEFINE_FAILPOINT(g_fp_save_term, "index_io.save.term");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_sync, "index_io.save.before_sync");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_rename,
                       "index_io.save.before_rename");
GRAFT_DEFINE_FAILPOINT(g_fp_save_before_dirsync,
                       "index_io.save.before_dirsync");
GRAFT_DEFINE_FAILPOINT(g_fp_load_open, "index_io.load.open");
GRAFT_DEFINE_FAILPOINT(g_fp_load_verify, "index_io.load.verify");

// 7-byte magic + 1 format-version byte ("GRFTIDX" '4'). Bump the version
// character when the layout changes; LoadIndex rejects unknown versions
// with kVersionMismatch instead of misparsing them. '3' (the layout
// without block-max arrays) is still readable.
constexpr char kMagicPrefix[7] = {'G', 'R', 'F', 'T', 'I', 'D', 'X'};
constexpr char kFormatVersion = '4';
constexpr char kLegacyFormatVersion = '3';

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---------------------------------------------------------------------------
// Checksummed writer: accumulates CRC32C over everything written since the
// last EmitCrc(), which stamps the running checksum (itself excluded) and
// starts the next section.

class CrcWriter {
 public:
  explicit CrcWriter(std::FILE* f) : f_(f) {}

  Status WriteBytes(const void* data, size_t size) {
    if (size != 0 && std::fwrite(data, 1, size, f_) != size) {
      return Status::IOError("short write");
    }
    crc_ = common::Crc32cExtend(crc_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status WriteScalar(T value) {
    return WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(v.size()));
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  Status EmitCrc() {
    const uint32_t crc = crc_;
    crc_ = 0;
    if (std::fwrite(&crc, 1, sizeof(crc), f_) != sizeof(crc)) {
      return Status::IOError("short write");
    }
    return Status::Ok();
  }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

// ---------------------------------------------------------------------------
// Checksummed reader: mirrors CrcWriter. VerifyCrc() reads the stamped
// checksum and compares it against the running one BEFORE the caller uses
// the section's content.

class CrcReader {
 public:
  CrcReader(std::FILE* f, uint64_t file_size)
      : f_(f), file_size_(file_size) {}

  Status ReadBytes(void* data, size_t size) {
    if (size != 0 && std::fread(data, 1, size, f_) != size) {
      return Status::DataLoss("short read or truncated index file");
    }
    crc_ = common::Crc32cExtend(crc_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status ReadScalar(T* value) {
    return ReadBytes(value, sizeof(T));
  }

  // Reads a length-prefixed array, validating the declared length against
  // the bytes actually left in the file BEFORE allocating — a corrupt or
  // truncated header can therefore never trigger a multi-gigabyte resize
  // or an out-of-bounds read; it fails cleanly with DataLoss.
  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    uint64_t size = 0;
    GRAFT_RETURN_IF_ERROR(ReadScalar(&size));
    const long pos = std::ftell(f_);
    if (pos < 0) {
      return Status::IOError("ftell failed while reading index file");
    }
    const uint64_t remaining = file_size_ - static_cast<uint64_t>(pos);
    if (size > remaining / sizeof(T)) {
      return Status::DataLoss(
          "vector length exceeds remaining index file bytes");
    }
    v->resize(size);
    return ReadBytes(v->data(), size * sizeof(T));
  }

  Status VerifyCrc(const char* section) {
    const uint32_t computed = crc_;
    crc_ = 0;
    uint32_t stored = 0;
    if (std::fread(&stored, 1, sizeof(stored), f_) != sizeof(stored)) {
      return Status::DataLoss("index file truncated before checksum of " +
                              std::string(section));
    }
    if (stored != computed) {
      return Status::Corruption("checksum mismatch in " +
                                std::string(section));
    }
    return Status::Ok();
  }

 private:
  std::FILE* f_;
  uint64_t file_size_;
  uint32_t crc_ = 0;
};

// Upper bound used to reject corrupt counts whose payloads are validated
// element-by-element rather than as one block read.
constexpr uint64_t kSanityCap = uint64_t{1} << 36;

StatusOr<uint64_t> FileSize(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("fseek failed while sizing index file");
  }
  const long size = std::ftell(f);
  if (size < 0) {
    return Status::IOError("ftell failed while sizing index file");
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IOError("fseek failed while rewinding index file");
  }
  return static_cast<uint64_t>(size);
}

// Writes the full index image (v4, or the legacy v3 layout) to an
// already-open stream.
Status WriteIndexBody(const InvertedIndex& index, std::FILE* f,
                      char version) {
  CrcWriter w(f);
  // The magic+version prologue is verified by direct comparison on load,
  // not by CRC; reset the accumulator so section 1 starts after it.
  if (std::fwrite(kMagicPrefix, 1, sizeof(kMagicPrefix), f) !=
          sizeof(kMagicPrefix) ||
      std::fwrite(&version, 1, 1, f) != 1) {
    return Status::IOError("short write");
  }

  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.doc_count()));
  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.total_words()));
  GRAFT_RETURN_IF_ERROR(w.WriteVector(index.doc_lengths()));
  GRAFT_RETURN_IF_ERROR(w.EmitCrc());
  GRAFT_FAILPOINT_WRITE(g_fp_save_header, f);

  GRAFT_RETURN_IF_ERROR(w.WriteScalar<uint64_t>(index.term_count()));
  GRAFT_RETURN_IF_ERROR(w.EmitCrc());

  std::vector<uint32_t> scratch_start;
  std::vector<uint32_t> scratch_tf;
  std::vector<uint32_t> scratch_len;
  for (TermId term = 0; term < index.term_count(); ++term) {
    GRAFT_FAILPOINT_WRITE(g_fp_save_term, f);
    const std::string& text = index.TermText(term);
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint32_t>(static_cast<uint32_t>(text.size())));
    GRAFT_RETURN_IF_ERROR(w.WriteBytes(text.data(), text.size()));
    const PostingList& list = index.postings(term);
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_docs()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_tfs()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_offset_starts()));
    GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_encoded_offsets()));
    if (version == kFormatVersion) {
      if (index.has_block_max()) {
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_start()));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_tf()));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(list.raw_frontier_doc_length()));
      } else {
        // Saving an index that was loaded from a v3 file: upgrade it by
        // recomputing the metadata on the fly.
        list.ComputeBlockMax(index.doc_lengths(), &scratch_start,
                             &scratch_tf, &scratch_len);
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_start));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_tf));
        GRAFT_RETURN_IF_ERROR(w.WriteVector(scratch_len));
      }
    }
    GRAFT_RETURN_IF_ERROR(
        w.WriteScalar<uint64_t>(list.collection_frequency()));
    GRAFT_RETURN_IF_ERROR(w.EmitCrc());
  }
  return Status::Ok();
}

// Fsyncs the directory containing `path` so the rename itself is durable
// (a crash after rename but before the directory hits disk could otherwise
// resurrect the old generation — acceptable — or lose the entry on some
// filesystems — not acceptable).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("directory fsync failed: " + dir);
  }
  return Status::Ok();
}

// The fallible middle of SaveIndex, factored out so the caller can unlink
// the temp file on ANY failure path with a single cleanup site.
Status WriteTempAndRename(const InvertedIndex& index,
                          const std::string& tmp_path,
                          const std::string& path, char version) {
  FilePtr file(std::fopen(tmp_path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + tmp_path);
  }
  std::FILE* f = file.get();
  GRAFT_FAILPOINT_WRITE(g_fp_save_open_tmp, f);
  GRAFT_RETURN_IF_ERROR(WriteIndexBody(index, f, version));
  GRAFT_FAILPOINT_WRITE(g_fp_save_before_sync, f);
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failed: " + tmp_path);
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::IOError("fsync failed: " + tmp_path);
  }
  file.reset();  // close before rename
  GRAFT_FAILPOINT(g_fp_save_before_rename);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp_path + " -> " + path);
  }
  // From here the new generation is visible; only durability of the
  // directory entry remains.
  GRAFT_FAILPOINT(g_fp_save_before_dirsync);
  return SyncParentDir(path);
}

}  // namespace

namespace {

Status SaveIndexVersioned(const InvertedIndex& index, const std::string& path,
                          char version) {
  // Deterministic temp name: a leftover from a crashed writer is simply
  // overwritten by the next save, so torn temp files never accumulate.
  const std::string tmp_path = path + ".tmp";
  const Status status = WriteTempAndRename(index, tmp_path, path, version);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());  // best effort; `path` is untouched
  }
  return status;
}

}  // namespace

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  return SaveIndexVersioned(index, path, kFormatVersion);
}

Status SaveIndexV3(const InvertedIndex& index, const std::string& path) {
  return SaveIndexVersioned(index, path, kLegacyFormatVersion);
}

StatusOr<InvertedIndex> LoadIndex(const std::string& path) {
  GRAFT_FAILPOINT(g_fp_load_open);
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::FILE* f = file.get();

  GRAFT_ASSIGN_OR_RETURN(const uint64_t file_size, FileSize(f));

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    return Status::DataLoss("index file shorter than its magic: " + path);
  }
  if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::DataLoss("bad magic; not a GRAFT index file: " + path);
  }
  if (magic[7] != kFormatVersion && magic[7] != kLegacyFormatVersion) {
    return Status::VersionMismatch(
        std::string("unsupported index format version '") + magic[7] +
        "' (this build reads versions '" + kLegacyFormatVersion + "' and '" +
        kFormatVersion + "'): " + path);
  }
  const bool has_block_max_sections = magic[7] == kFormatVersion;

  CrcReader r(f, file_size);
  InvertedIndex index;
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&doc_count));
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&total_words));
  std::vector<uint32_t> doc_lengths;
  GRAFT_RETURN_IF_ERROR(r.ReadVector(&doc_lengths));
  GRAFT_RETURN_IF_ERROR(r.VerifyCrc("header section"));
  if (doc_lengths.size() != doc_count) {
    return Status::Corruption("doc length array does not match doc count");
  }
  index.SetDocLengths(std::move(doc_lengths), total_words);

  uint64_t term_count = 0;
  GRAFT_RETURN_IF_ERROR(r.ReadScalar(&term_count));
  GRAFT_RETURN_IF_ERROR(r.VerifyCrc("term directory"));
  if (term_count > kSanityCap || term_count > file_size) {
    return Status::Corruption("implausible term count");
  }
  for (uint64_t i = 0; i < term_count; ++i) {
    uint32_t text_len = 0;
    GRAFT_RETURN_IF_ERROR(r.ReadScalar(&text_len));
    if (text_len > (1u << 20)) {
      return Status::Corruption("implausible term length");
    }
    std::string text(text_len, '\0');
    GRAFT_RETURN_IF_ERROR(r.ReadBytes(text.data(), text_len));

    std::vector<DocId> docs;
    std::vector<uint32_t> tfs;
    std::vector<uint64_t> starts;
    std::vector<uint8_t> encoded;
    std::vector<uint32_t> frontier_start;
    std::vector<uint32_t> frontier_tf;
    std::vector<uint32_t> frontier_len;
    uint64_t total_positions = 0;
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&docs));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&tfs));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&starts));
    GRAFT_RETURN_IF_ERROR(r.ReadVector(&encoded));
    if (has_block_max_sections) {
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_start));
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_tf));
      GRAFT_RETURN_IF_ERROR(r.ReadVector(&frontier_len));
    }
    GRAFT_RETURN_IF_ERROR(r.ReadScalar(&total_positions));
    // Verify the section's checksum BEFORE mutating the index with its
    // content — a term record either enters the index intact or not at
    // all.
    GRAFT_RETURN_IF_ERROR(
        r.VerifyCrc(("term record " + std::to_string(i)).c_str()));
    if (tfs.size() != docs.size()) {
      return Status::Corruption("tf array does not match doc array");
    }
    if (starts.size() != docs.size() + 1 ||
        (!starts.empty() && starts.back() != encoded.size())) {
      return Status::Corruption("offset index does not match encoded bytes");
    }
    if (has_block_max_sections) {
      // The frontier section must be structurally coherent before
      // RestoreBlockMax installs it: one delimiter run per posting block,
      // monotone with at least one point per (non-empty) block, and the
      // two point arrays exactly as long as the last delimiter says.
      const uint64_t expected_blocks =
          (docs.size() + PostingList::kBlockSize - 1) /
          PostingList::kBlockSize;
      if (frontier_start.size() != expected_blocks + 1 ||
          frontier_start.front() != 0 ||
          frontier_start.back() != frontier_tf.size() ||
          frontier_tf.size() != frontier_len.size()) {
        return Status::Corruption(
            "block frontier arrays do not match posting block count");
      }
      for (size_t b = 0; b < expected_blocks; ++b) {
        if (frontier_start[b] >= frontier_start[b + 1]) {
          return Status::Corruption(
              "block frontier delimiters are not strictly increasing");
        }
      }
    }
    const TermId term = index.InternTerm(text);
    if (term != i) {
      return Status::Corruption("duplicate term in index file: " + text);
    }
    index.mutable_postings(term)->RestoreFrom(
        std::move(docs), std::move(tfs), std::move(starts),
        std::move(encoded), total_positions);
    if (has_block_max_sections) {
      index.mutable_postings(term)->RestoreBlockMax(
          std::move(frontier_start), std::move(frontier_tf),
          std::move(frontier_len));
    }
  }
  index.set_has_block_max(has_block_max_sections);
  GRAFT_FAILPOINT(g_fp_load_verify);
  return index;
}

}  // namespace graft::index
