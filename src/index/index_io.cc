#include "index/index_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace graft::index {

namespace {

// 7-byte magic + 1 format-version byte ("GRFTIDX" '2'). Bump the version
// character when the layout changes; LoadIndex rejects other versions
// with a distinct message instead of misparsing them.
constexpr char kMagicPrefix[7] = {'G', 'R', 'F', 'T', 'I', 'D', 'X'};
constexpr char kFormatVersion = '2';

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  if (size != 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::IOError("short write");
  }
  return Status::Ok();
}

Status ReadBytes(std::FILE* f, void* data, size_t size) {
  if (size != 0 && std::fread(data, 1, size, f) != size) {
    return Status::DataLoss("short read or truncated index file");
  }
  return Status::Ok();
}

template <typename T>
Status WriteScalar(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
Status ReadScalar(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

template <typename T>
Status WriteVector(std::FILE* f, const std::vector<T>& v) {
  GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(f, v.size()));
  return WriteBytes(f, v.data(), v.size() * sizeof(T));
}

// Reads a length-prefixed array, validating the declared length against
// the bytes actually left in the file BEFORE allocating — a corrupt or
// truncated header can therefore never trigger a multi-gigabyte resize or
// an out-of-bounds read; it fails cleanly with DataLoss.
template <typename T>
Status ReadVector(std::FILE* f, std::vector<T>* v, uint64_t file_size) {
  uint64_t size = 0;
  GRAFT_RETURN_IF_ERROR(ReadScalar(f, &size));
  const long pos = std::ftell(f);
  if (pos < 0) {
    return Status::IOError("ftell failed while reading index file");
  }
  const uint64_t remaining = file_size - static_cast<uint64_t>(pos);
  if (size > remaining / sizeof(T)) {
    return Status::DataLoss(
        "vector length exceeds remaining index file bytes");
  }
  v->resize(size);
  return ReadBytes(f, v->data(), size * sizeof(T));
}

// Upper bound used to reject corrupt counts whose payloads are validated
// element-by-element rather than as one block read.
constexpr uint64_t kSanityCap = uint64_t{1} << 36;

StatusOr<uint64_t> FileSize(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("fseek failed while sizing index file");
  }
  const long size = std::ftell(f);
  if (size < 0) {
    return Status::IOError("ftell failed while sizing index file");
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IOError("fseek failed while rewinding index file");
  }
  return static_cast<uint64_t>(size);
}

}  // namespace

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  std::FILE* f = file.get();

  GRAFT_RETURN_IF_ERROR(WriteBytes(f, kMagicPrefix, sizeof(kMagicPrefix)));
  GRAFT_RETURN_IF_ERROR(WriteScalar<char>(f, kFormatVersion));
  GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(f, index.doc_count()));
  GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(f, index.total_words()));
  GRAFT_RETURN_IF_ERROR(WriteVector(f, index.doc_lengths()));

  GRAFT_RETURN_IF_ERROR(WriteScalar<uint64_t>(f, index.term_count()));
  for (TermId term = 0; term < index.term_count(); ++term) {
    const std::string& text = index.TermText(term);
    GRAFT_RETURN_IF_ERROR(WriteScalar<uint32_t>(
        f, static_cast<uint32_t>(text.size())));
    GRAFT_RETURN_IF_ERROR(WriteBytes(f, text.data(), text.size()));
    const PostingList& list = index.postings(term);
    GRAFT_RETURN_IF_ERROR(WriteVector(f, list.raw_docs()));
    GRAFT_RETURN_IF_ERROR(WriteVector(f, list.raw_tfs()));
    GRAFT_RETURN_IF_ERROR(WriteVector(f, list.raw_offset_starts()));
    GRAFT_RETURN_IF_ERROR(WriteVector(f, list.raw_encoded_offsets()));
    GRAFT_RETURN_IF_ERROR(
        WriteScalar<uint64_t>(f, list.collection_frequency()));
  }
  if (std::fflush(f) != 0) {
    return Status::IOError("flush failed: " + path);
  }
  return Status::Ok();
}

StatusOr<InvertedIndex> LoadIndex(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::FILE* f = file.get();

  GRAFT_ASSIGN_OR_RETURN(const uint64_t file_size, FileSize(f));

  char magic[8];
  GRAFT_RETURN_IF_ERROR(ReadBytes(f, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::DataLoss("bad magic; not a GRAFT index file: " + path);
  }
  if (magic[7] != kFormatVersion) {
    return Status::DataLoss(
        std::string("unsupported index format version '") + magic[7] +
        "' (this build reads version '" + kFormatVersion + "'): " + path);
  }

  InvertedIndex index;
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  GRAFT_RETURN_IF_ERROR(ReadScalar(f, &doc_count));
  GRAFT_RETURN_IF_ERROR(ReadScalar(f, &total_words));
  std::vector<uint32_t> doc_lengths;
  GRAFT_RETURN_IF_ERROR(ReadVector(f, &doc_lengths, file_size));
  if (doc_lengths.size() != doc_count) {
    return Status::DataLoss("doc length array does not match doc count");
  }
  index.SetDocLengths(std::move(doc_lengths), total_words);

  uint64_t term_count = 0;
  GRAFT_RETURN_IF_ERROR(ReadScalar(f, &term_count));
  if (term_count > kSanityCap || term_count > file_size) {
    return Status::DataLoss("implausible term count");
  }
  for (uint64_t i = 0; i < term_count; ++i) {
    uint32_t text_len = 0;
    GRAFT_RETURN_IF_ERROR(ReadScalar(f, &text_len));
    if (text_len > (1u << 20)) {
      return Status::DataLoss("implausible term length");
    }
    std::string text(text_len, '\0');
    GRAFT_RETURN_IF_ERROR(ReadBytes(f, text.data(), text_len));
    const TermId term = index.InternTerm(text);
    if (term != i) {
      return Status::DataLoss("duplicate term in index file: " + text);
    }

    std::vector<DocId> docs;
    std::vector<uint32_t> tfs;
    std::vector<uint64_t> starts;
    std::vector<uint8_t> encoded;
    uint64_t total_positions = 0;
    GRAFT_RETURN_IF_ERROR(ReadVector(f, &docs, file_size));
    GRAFT_RETURN_IF_ERROR(ReadVector(f, &tfs, file_size));
    GRAFT_RETURN_IF_ERROR(ReadVector(f, &starts, file_size));
    GRAFT_RETURN_IF_ERROR(ReadVector(f, &encoded, file_size));
    GRAFT_RETURN_IF_ERROR(ReadScalar(f, &total_positions));
    if (tfs.size() != docs.size()) {
      return Status::DataLoss("tf array does not match doc array");
    }
    if (starts.size() != docs.size() + 1 ||
        (!starts.empty() && starts.back() != encoded.size())) {
      return Status::DataLoss("offset index does not match encoded bytes");
    }
    index.mutable_postings(term)->RestoreFrom(
        std::move(docs), std::move(tfs), std::move(starts),
        std::move(encoded), total_positions);
  }
  return index;
}

}  // namespace graft::index
