// The term-position inverted index plus collection statistics: the physical
// substrate beneath every GRAFT plan leaf.

#ifndef GRAFT_INDEX_INVERTED_INDEX_H_
#define GRAFT_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mmap_region.h"
#include "common/status.h"
#include "index/block_cache.h"
#include "index/posting_list.h"
#include "index/types.h"

namespace graft::index {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  // Term lookup. Returns kInvalidTerm if the term does not occur.
  TermId LookupTerm(std::string_view term) const;
  const std::string& TermText(TermId term) const { return terms_[term]; }
  size_t term_count() const { return terms_.size(); }

  // Collection statistics (the paper's Figure 1 vocabulary).
  uint64_t doc_count() const { return doc_lengths_.size(); }
  uint64_t total_words() const { return total_words_; }
  double average_doc_length() const {
    return doc_count() == 0
               ? 0.0
               : static_cast<double>(total_words_) /
                     static_cast<double>(doc_count());
  }
  uint32_t doc_length(DocId doc) const { return doc_lengths_[doc]; }

  // #Docs in Figure 1: number of documents containing the term.
  uint64_t DocFreq(TermId term) const {
    return postings_[term].doc_count();
  }
  uint64_t CollectionFreq(TermId term) const {
    return postings_[term].collection_frequency();
  }

  const PostingList& postings(TermId term) const { return postings_[term]; }

  // #InDoc in Figure 1: occurrences of `term` in `doc` (0 if absent).
  // O(log df) galloping search; used by scoring, not by scans.
  uint32_t TermFreqInDoc(TermId term, DocId doc) const {
    return TermFreqInDoc(term, doc, nullptr);
  }

  // Stateful variant for the common scoring pattern of probing ascending
  // doc ids: `probe` (caller-owned, start at 0) seeds the gallop from the
  // last hit, making a monotone scan amortized O(1) per lookup. A
  // backwards probe falls back to the O(log df) cold gallop from the
  // front. Keeping the cursor in the caller (not a mutable member) keeps
  // const lookups data-race-free under concurrent query execution.
  uint32_t TermFreqInDoc(TermId term, DocId doc, size_t* probe) const;

  // ---- Block-max metadata (dynamic-pruning score ceilings) ----
  // True when every posting list carries per-block (max tf, min doc
  // length) metadata: set by BuildBlockMax and by loading a v4 index file.
  // v3 files have no such sections, so a v3-loaded index reports false and
  // block-max pruning is gated off ("blocked: no block-max metadata").
  bool has_block_max() const { return has_block_max_; }
  // Recomputes per-block metadata for every term from the current postings
  // and document lengths. IndexBuilder::Build and the per-segment build
  // call this; it is idempotent.
  void BuildBlockMax();
  // Loader hook: marks metadata present after per-term RestoreBlockMax.
  void set_has_block_max(bool value) { has_block_max_ = value; }

  // ---- Construction interface (used by IndexBuilder and index_io) ----
  TermId InternTerm(std::string_view term);
  PostingList* mutable_postings(TermId term) { return &postings_[term]; }
  void AppendDocLength(uint32_t length) {
    doc_lengths_.push_back(length);
    total_words_ += length;
  }
  void SetDocLengths(std::vector<uint32_t> lengths, uint64_t total_words) {
    doc_lengths_ = std::move(lengths);
    total_words_ = total_words;
  }
  const std::vector<uint32_t>& doc_lengths() const { return doc_lengths_; }

  // ---- Packed (v5 mmap) storage ----
  // A LoadIndexMapped index owns the mapped file region and shares a
  // decoded-block cache; its posting lists are zero-copy views keyed by a
  // process-unique cache generation. A materialized index reports
  // is_packed() == false and a null cache.
  bool is_packed() const { return region_ != nullptr; }
  void AttachPackedStorage(std::shared_ptr<common::MmapRegion> region,
                           std::shared_ptr<BlockCache> cache,
                           uint64_t generation) {
    region_ = std::move(region);
    cache_ = std::move(cache);
    cache_generation_ = generation;
  }
  const std::shared_ptr<BlockCache>& block_cache() const { return cache_; }
  // Generation under which this load's blocks are cached; EraseGeneration
  // with it after a hot-reload swap frees the dead entries immediately.
  uint64_t cache_generation() const { return cache_generation_; }
  // True when the packed bytes are a real mmap (false: heap fallback).
  bool mapped() const { return region_ != nullptr && region_->mapped(); }

 private:
  std::unordered_map<std::string, TermId> dictionary_;
  std::vector<std::string> terms_;
  std::vector<PostingList> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_words_ = 0;
  bool has_block_max_ = false;
  std::shared_ptr<common::MmapRegion> region_;
  std::shared_ptr<BlockCache> cache_;
  uint64_t cache_generation_ = 0;
};

// Incremental index construction. Documents must be added in increasing
// doc-id order (ids are assigned sequentially from 0).
class IndexBuilder {
 public:
  IndexBuilder();

  // Adds the next document. Tokens are term texts in offset order.
  DocId AddDocument(std::span<const std::string_view> tokens);
  // Convenience for std::string token vectors.
  DocId AddDocumentStrings(const std::vector<std::string>& tokens);
  // Adds a document with explicit (strictly increasing) positions — used
  // for structure-aware composite offsets (text/structure.h). The document
  // length recorded for scoring is the token count, not the offset span.
  DocId AddDocumentPositioned(std::span<const std::string_view> tokens,
                              std::span<const Offset> offsets);

  // Finalizes and returns the index. The builder is consumed.
  InvertedIndex Build();

 private:
  void AccumulateOffset(TermId term, Offset offset);
  DocId FlushDocument(uint32_t length);

  InvertedIndex index_;
  DocId next_doc_ = 0;
  // Scratch: per-term offsets for the current document. Entries persist
  // across documents (vectors are cleared, not erased) so steady-state
  // builds neither rehash the map nor reallocate offset storage.
  std::unordered_map<TermId, std::vector<Offset>> doc_offsets_;
  std::vector<TermId> doc_terms_;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_INVERTED_INDEX_H_
