// LEB128-style varint coding for compressed posting storage, as used by
// production engines (Lucene, RocksDB): term positions are stored as
// delta-encoded varints, so position scans pay a real decode cost while
// the term-document arrays stay directly addressable — the physical
// asymmetry behind the pre-counting optimization.

#ifndef GRAFT_INDEX_VARINT_H_
#define GRAFT_INDEX_VARINT_H_

#include <cstdint>
#include <vector>

namespace graft::index {

inline void PutVarint32(std::vector<uint8_t>* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

// Decodes one varint starting at `p`; advances and returns the value.
inline uint32_t GetVarint32(const uint8_t** p) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = *(*p)++;
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

}  // namespace graft::index

#endif  // GRAFT_INDEX_VARINT_H_
