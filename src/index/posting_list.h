// Posting lists for the term-position index.
//
// Layout is columnar per term with *compressed positions* (the idiom of
// production engines such as Lucene):
//
//   * the document id array and the per-document occurrence counts (tf)
//     are raw arrays — directly addressable, cheap to scan and skip;
//   * the position lists are delta-encoded varints — compact, but reading
//     them costs a decode pass.
//
// This asymmetry gives the paper's two physical scan granularities:
//
//   * the term-POSITION scan (Atomic Match Factory A) walks docs and
//     decodes offsets;
//   * the term-DOCUMENT scan (Pre-Counting factory CA, Section 5.2.3)
//     walks only the docs/tf arrays and never touches (or decodes)
//     position bytes — "a much smaller term-document index".
//
// Document-level skipping (SkipTo) uses galloping search over the document
// array; this is the skip-pointer / zig-zag-join primitive of Section 5.2.1.

#ifndef GRAFT_INDEX_POSTING_LIST_H_
#define GRAFT_INDEX_POSTING_LIST_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "index/types.h"
#include "index/varint.h"

namespace graft::index {

class PostingList {
 public:
  // Postings are grouped into fixed-size blocks for block-max pruning
  // metadata: per block, the Pareto frontier of the block's (tf, document
  // length) pairs (dominance: higher tf AND shorter document). A bounded
  // scheme's α is monotone ↑tf / ↓length, so every document in the block
  // is dominated by some frontier point, and the frontier's best α is the
  // block's EXACT score ceiling — unlike the single (max tf, min length)
  // point, which pairs extremes that rarely co-occur in one document and
  // yields a ceiling too loose to ever skip a block.
  static constexpr size_t kBlockSize = 128;
  // Frontier points stored per block, at most. When a block's skyline is
  // larger, the tail collapses into one synthetic dominating point
  // (tail's max tf, block min length) — still a sound upper bound, just
  // not exact for the collapsed region.
  static constexpr size_t kMaxFrontierPoints = 8;

  PostingList() = default;

  // Appends one document's occurrences. Documents must be appended in
  // strictly increasing doc order; offsets must be strictly increasing.
  void AddDocument(DocId doc, std::span<const Offset> offsets);

  size_t doc_count() const { return docs_.size(); }
  // Total occurrences across all documents (collection frequency).
  uint64_t collection_frequency() const { return total_positions_; }

  std::span<const DocId> docs() const { return docs_; }
  std::span<const uint32_t> tfs() const { return tfs_; }

  DocId doc_at(size_t i) const { return docs_[i]; }
  uint32_t tf_at(size_t i) const { return tfs_[i]; }

  // Decodes doc i's positions into `out` (cleared first). The decode cost
  // is the point: position access is not free.
  void DecodeOffsets(size_t i, std::vector<Offset>* out) const;
  std::vector<Offset> OffsetsAt(size_t i) const {
    std::vector<Offset> out;
    DecodeOffsets(i, &out);
    return out;
  }

  // Index of the first posting with doc >= target, starting the gallop from
  // `from`. Returns doc_count() if none. When `probes` is non-null, it is
  // incremented once per document-id comparison the search performed
  // (gallop doublings + binary-search halvings) — the per-query probe
  // counter surfaced by EXPLAIN ANALYZE.
  size_t GallopTo(size_t from, DocId target, uint64_t* probes = nullptr) const;

  // ---- Block-max metadata (score ceilings for dynamic pruning) ----
  // Recomputed by BuildBlockMax (needs per-doc lengths, so the index layer
  // drives it) or restored verbatim from a v4 index file.
  void BuildBlockMax(std::span<const uint32_t> doc_lengths);
  // Side-effect-free variant (index_io uses it to upgrade an index that
  // was loaded without metadata at save time). `frontier_start` gets
  // block_count()+1 entries delimiting each block's run of points in the
  // parallel `frontier_tf` / `frontier_doc_length` arrays; within a block,
  // points are sorted tf-descending with strictly decreasing lengths.
  void ComputeBlockMax(std::span<const uint32_t> doc_lengths,
                       std::vector<uint32_t>* frontier_start,
                       std::vector<uint32_t>* frontier_tf,
                       std::vector<uint32_t>* frontier_doc_length) const;
  void RestoreBlockMax(std::vector<uint32_t> frontier_start,
                       std::vector<uint32_t> frontier_tf,
                       std::vector<uint32_t> frontier_doc_length);
  // ceil(doc_count / kBlockSize); 0 when metadata is absent.
  size_t block_count() const {
    return frontier_start_.empty() ? 0 : frontier_start_.size() - 1;
  }
  // Frontier-point index range [begin, end) of `block`; always non-empty.
  size_t frontier_begin(size_t block) const { return frontier_start_[block]; }
  size_t frontier_end(size_t block) const {
    return frontier_start_[block + 1];
  }
  uint32_t frontier_tf(size_t point) const { return frontier_tf_[point]; }
  uint32_t frontier_doc_length(size_t point) const {
    return frontier_doc_length_[point];
  }
  // The first frontier point carries the block's max tf, the last its min
  // document length (the sort invariant above).
  uint32_t block_max_tf(size_t block) const {
    return frontier_tf_[frontier_start_[block]];
  }
  uint32_t block_min_doc_length(size_t block) const {
    return frontier_doc_length_[frontier_start_[block + 1] - 1];
  }
  // Posting-index range [begin, end) covered by `block`.
  size_t block_begin(size_t block) const { return block * kBlockSize; }
  size_t block_end(size_t block) const {
    return std::min(docs_.size(), (block + 1) * kBlockSize);
  }
  // Last (largest) document id in `block` — the skip target when the
  // block's ceiling cannot reach the heap threshold.
  DocId block_last_doc(size_t block) const {
    return docs_[block_end(block) - 1];
  }

  // Serialization hooks used by index_io.
  const std::vector<DocId>& raw_docs() const { return docs_; }
  const std::vector<uint32_t>& raw_tfs() const { return tfs_; }
  const std::vector<uint64_t>& raw_offset_starts() const {
    return offset_start_;
  }
  const std::vector<uint8_t>& raw_encoded_offsets() const {
    return encoded_offsets_;
  }
  const std::vector<uint32_t>& raw_frontier_start() const {
    return frontier_start_;
  }
  const std::vector<uint32_t>& raw_frontier_tf() const {
    return frontier_tf_;
  }
  const std::vector<uint32_t>& raw_frontier_doc_length() const {
    return frontier_doc_length_;
  }
  void RestoreFrom(std::vector<DocId> docs, std::vector<uint32_t> tfs,
                   std::vector<uint64_t> offset_starts,
                   std::vector<uint8_t> encoded_offsets,
                   uint64_t total_positions);

 private:
  std::vector<DocId> docs_;
  std::vector<uint32_t> tfs_;
  // offset_start_[i] is the byte offset into encoded_offsets_ of doc i's
  // first varint; has doc_count()+1 entries.
  std::vector<uint64_t> offset_start_{0};
  std::vector<uint8_t> encoded_offsets_;
  uint64_t total_positions_ = 0;
  // Per-block (tf, doc length) Pareto frontiers, flattened: block b's
  // points occupy [frontier_start_[b], frontier_start_[b+1]) of the two
  // parallel point arrays. Empty until BuildBlockMax or RestoreBlockMax
  // runs; frontier_start_ has block_count()+1 entries when present.
  std::vector<uint32_t> frontier_start_;
  std::vector<uint32_t> frontier_tf_;
  std::vector<uint32_t> frontier_doc_length_;
};

// Document-granular cursor over a posting list (the A scan). offsets()
// decodes the current document's positions into an internal scratch buffer
// whose contents stay valid until the next offsets() call (Next/SkipTo do
// not touch it).
class PostingCursor {
 public:
  explicit PostingCursor(const PostingList* list) : list_(list) {}

  bool AtEnd() const { return pos_ >= list_->doc_count(); }
  DocId doc() const { return list_->doc_at(pos_); }
  uint32_t tf() const { return list_->tf_at(pos_); }
  std::span<const Offset> offsets() {
    list_->DecodeOffsets(pos_, &scratch_);
    return scratch_;
  }

  // Posting index the cursor sits on (operators diff it across SkipTo to
  // count skip hits).
  size_t position() const { return pos_; }

  void Next() { ++pos_; }
  // Advances to the first posting with doc >= target (galloping skip).
  void SkipTo(DocId target, uint64_t* probes = nullptr) {
    pos_ = list_->GallopTo(pos_, target, probes);
  }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
  std::vector<Offset> scratch_;
};

// Document-granular cursor that touches only the doc/tf arrays (the CA
// scan). Same navigation interface as PostingCursor minus offsets().
class CountCursor {
 public:
  explicit CountCursor(const PostingList* list) : list_(list) {}

  bool AtEnd() const { return pos_ >= list_->doc_count(); }
  DocId doc() const { return list_->doc_at(pos_); }
  uint32_t tf() const { return list_->tf_at(pos_); }

  size_t position() const { return pos_; }

  void Next() { ++pos_; }
  void SkipTo(DocId target, uint64_t* probes = nullptr) {
    pos_ = list_->GallopTo(pos_, target, probes);
  }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_POSTING_LIST_H_
