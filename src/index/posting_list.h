// Posting lists for the term-position index.
//
// Layout is columnar per term with *compressed positions* (the idiom of
// production engines such as Lucene):
//
//   * the document id array and the per-document occurrence counts (tf)
//     are raw arrays — directly addressable, cheap to scan and skip;
//   * the position lists are delta-encoded varints — compact, but reading
//     them costs a decode pass.
//
// This asymmetry gives the paper's two physical scan granularities:
//
//   * the term-POSITION scan (Atomic Match Factory A) walks docs and
//     decodes offsets;
//   * the term-DOCUMENT scan (Pre-Counting factory CA, Section 5.2.3)
//     walks only the docs/tf arrays and never touches (or decodes)
//     position bytes — "a much smaller term-document index".
//
// Document-level skipping (SkipTo) uses galloping search over the document
// array; this is the skip-pointer / zig-zag-join primitive of Section 5.2.1.
//
// Storage comes in TWO modes:
//
//   * materialized (the default): docs/tfs are in-heap arrays, positions
//     are an in-heap varint blob — what IndexBuilder produces and what v3/
//     v4/eager-v5 loads restore;
//   * packed (v5 mmap loads): nothing is materialized. The list holds
//     zero-copy pointers into the mapped index file (fixed-width block
//     headers, bit-packed 128-entry payload blocks, the position-varint
//     blob) and every accessor decodes blocks on demand through the
//     generation-keyed BlockCache (index/block_cache.h). Doc-id-only reads
//     (GallopTo, doc_at) fetch docs-granularity blocks; tf_at and
//     DecodeOffsets fetch full blocks — so block-max pruning can align on
//     block boundaries without ever unpacking the score payload of a
//     skipped block. Decoded values are bit-identical to the materialized
//     arrays (the differential fuzzer's v5 variant enforces this), only
//     access cost differs.

#ifndef GRAFT_INDEX_POSTING_LIST_H_
#define GRAFT_INDEX_POSTING_LIST_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "index/block_cache.h"
#include "index/index_format.h"
#include "index/types.h"
#include "index/varint.h"

namespace graft::index {

// Zero-copy backing views of one term's packed (v5) posting data. The
// pointed-to bytes belong to the owning index's MmapRegion; the cache
// pointer is non-owning too (the index keeps both alive).
struct PackedPostings {
  const BlockHeaderV5* headers = nullptr;  // ceil(doc_count / 128) entries
  const uint8_t* payload = nullptr;        // term's packed-column base
  const uint8_t* offsets = nullptr;        // term's position-varint base
  uint64_t offsets_length = 0;
  uint64_t doc_count = 0;
  uint64_t generation = 0;  // BlockCache key namespace for this load
  uint32_t term = 0;
  BlockCache* cache = nullptr;  // null <=> the list is not packed
};

class PostingList {
 public:
  // Postings are grouped into fixed-size blocks for block-max pruning
  // metadata: per block, the Pareto frontier of the block's (tf, document
  // length) pairs (dominance: higher tf AND shorter document). A bounded
  // scheme's α is monotone ↑tf / ↓length, so every document in the block
  // is dominated by some frontier point, and the frontier's best α is the
  // block's EXACT score ceiling — unlike the single (max tf, min length)
  // point, which pairs extremes that rarely co-occur in one document and
  // yields a ceiling too loose to ever skip a block.
  static constexpr size_t kBlockSize = 128;
  // Frontier points stored per block, at most. When a block's skyline is
  // larger, the tail collapses into one synthetic dominating point
  // (tail's max tf, block min length) — still a sound upper bound, just
  // not exact for the collapsed region.
  static constexpr size_t kMaxFrontierPoints = 8;

  PostingList() = default;

  // Appends one document's occurrences. Documents must be appended in
  // strictly increasing doc order; offsets must be strictly increasing.
  void AddDocument(DocId doc, std::span<const Offset> offsets);

  size_t doc_count() const {
    return is_packed() ? packed_.doc_count : docs_.size();
  }
  // Total occurrences across all documents (collection frequency).
  uint64_t collection_frequency() const { return total_positions_; }

  // True when the list is a zero-copy view over a v5 mmap load; accessors
  // then decode through the BlockCache instead of reading in-heap arrays.
  bool is_packed() const { return packed_.cache != nullptr; }

  // Whole-array spans exist only in materialized mode (baselines that want
  // them on a packed index must walk via doc_at/GallopTo instead).
  std::span<const DocId> docs() const {
    assert(!is_packed());
    return docs_;
  }
  std::span<const uint32_t> tfs() const {
    assert(!is_packed());
    return tfs_;
  }

  DocId doc_at(size_t i) const {
    return is_packed() ? PackedDocAt(i) : docs_[i];
  }
  uint32_t tf_at(size_t i) const {
    return is_packed() ? PackedTfAt(i) : tfs_[i];
  }

  // Decodes doc i's positions into `out` (cleared first). The decode cost
  // is the point: position access is not free.
  void DecodeOffsets(size_t i, std::vector<Offset>* out) const;
  std::vector<Offset> OffsetsAt(size_t i) const {
    std::vector<Offset> out;
    DecodeOffsets(i, &out);
    return out;
  }

  // Index of the first posting with doc >= target, starting the gallop from
  // `from`. Returns doc_count() if none. When `probes` is non-null, it is
  // incremented once per document-id comparison the search performed
  // (gallop doublings + binary-search halvings) — the per-query probe
  // counter surfaced by EXPLAIN ANALYZE.
  size_t GallopTo(size_t from, DocId target, uint64_t* probes = nullptr) const;

  // ---- Block-max metadata (score ceilings for dynamic pruning) ----
  // Recomputed by BuildBlockMax (needs per-doc lengths, so the index layer
  // drives it) or restored verbatim from a v4 index file.
  void BuildBlockMax(std::span<const uint32_t> doc_lengths);
  // Side-effect-free variant (index_io uses it to upgrade an index that
  // was loaded without metadata at save time). `frontier_start` gets
  // block_count()+1 entries delimiting each block's run of points in the
  // parallel `frontier_tf` / `frontier_doc_length` arrays; within a block,
  // points are sorted tf-descending with strictly decreasing lengths.
  void ComputeBlockMax(std::span<const uint32_t> doc_lengths,
                       std::vector<uint32_t>* frontier_start,
                       std::vector<uint32_t>* frontier_tf,
                       std::vector<uint32_t>* frontier_doc_length) const;
  void RestoreBlockMax(std::vector<uint32_t> frontier_start,
                       std::vector<uint32_t> frontier_tf,
                       std::vector<uint32_t> frontier_doc_length);
  // ceil(doc_count / kBlockSize); 0 when metadata is absent.
  size_t block_count() const {
    return frontier_start_.empty() ? 0 : frontier_start_.size() - 1;
  }
  // Frontier-point index range [begin, end) of `block`; always non-empty.
  size_t frontier_begin(size_t block) const { return frontier_start_[block]; }
  size_t frontier_end(size_t block) const {
    return frontier_start_[block + 1];
  }
  uint32_t frontier_tf(size_t point) const { return frontier_tf_[point]; }
  uint32_t frontier_doc_length(size_t point) const {
    return frontier_doc_length_[point];
  }
  // The first frontier point carries the block's max tf, the last its min
  // document length (the sort invariant above).
  uint32_t block_max_tf(size_t block) const {
    return frontier_tf_[frontier_start_[block]];
  }
  uint32_t block_min_doc_length(size_t block) const {
    return frontier_doc_length_[frontier_start_[block + 1] - 1];
  }
  // Posting-index range [begin, end) covered by `block`.
  size_t block_begin(size_t block) const { return block * kBlockSize; }
  size_t block_end(size_t block) const {
    return std::min(doc_count(), (block + 1) * kBlockSize);
  }
  // Last (largest) document id in `block` — the skip target when the
  // block's ceiling cannot reach the heap threshold. Packed lists answer
  // from the block header, so skipping a block never decodes it.
  DocId block_last_doc(size_t block) const {
    return is_packed() ? packed_.headers[block].last_doc
                       : docs_[block_end(block) - 1];
  }

  // Serialization hooks used by index_io (materialized lists only; a
  // packed list re-saves by round-tripping through an eager load).
  const std::vector<DocId>& raw_docs() const {
    assert(!is_packed());
    return docs_;
  }
  const std::vector<uint32_t>& raw_tfs() const {
    assert(!is_packed());
    return tfs_;
  }
  const std::vector<uint64_t>& raw_offset_starts() const {
    assert(!is_packed());
    return offset_start_;
  }
  const std::vector<uint8_t>& raw_encoded_offsets() const {
    assert(!is_packed());
    return encoded_offsets_;
  }
  const std::vector<uint32_t>& raw_frontier_start() const {
    return frontier_start_;
  }
  const std::vector<uint32_t>& raw_frontier_tf() const {
    return frontier_tf_;
  }
  const std::vector<uint32_t>& raw_frontier_doc_length() const {
    return frontier_doc_length_;
  }
  void RestoreFrom(std::vector<DocId> docs, std::vector<uint32_t> tfs,
                   std::vector<uint64_t> offset_starts,
                   std::vector<uint8_t> encoded_offsets,
                   uint64_t total_positions);
  // Turns the list into a packed view (v5 mmap load). Mutators and raw
  // array hooks must not be called afterwards.
  void RestorePacked(const PackedPostings& packed,
                     uint64_t collection_frequency);

 private:
  // Decodes block `b` at the requested granularity, through the cache.
  // The returned pointer stays valid until the list's next accessor call
  // on this thread (a thread-local memo pins it).
  const DecodedBlock* FetchBlock(size_t b, BlockKind kind) const;
  DocId PackedDocAt(size_t i) const;
  uint32_t PackedTfAt(size_t i) const;
  void PackedDecodeOffsets(size_t i, std::vector<Offset>* out) const;
  size_t PackedGallopTo(size_t from, DocId target, uint64_t* probes) const;
  // Bit-unpacks block `b` from the mapped payload bytes (cache miss path).
  void UnpackBlock(size_t b, BlockKind kind, DecodedBlock* out) const;

  PackedPostings packed_;
  std::vector<DocId> docs_;
  std::vector<uint32_t> tfs_;
  // offset_start_[i] is the byte offset into encoded_offsets_ of doc i's
  // first varint; has doc_count()+1 entries.
  std::vector<uint64_t> offset_start_{0};
  std::vector<uint8_t> encoded_offsets_;
  uint64_t total_positions_ = 0;
  // Per-block (tf, doc length) Pareto frontiers, flattened: block b's
  // points occupy [frontier_start_[b], frontier_start_[b+1]) of the two
  // parallel point arrays. Empty until BuildBlockMax or RestoreBlockMax
  // runs; frontier_start_ has block_count()+1 entries when present.
  std::vector<uint32_t> frontier_start_;
  std::vector<uint32_t> frontier_tf_;
  std::vector<uint32_t> frontier_doc_length_;
};

// Document-granular cursor over a posting list (the A scan). offsets()
// decodes the current document's positions into an internal scratch buffer
// whose contents stay valid until the next offsets() call (Next/SkipTo do
// not touch it).
class PostingCursor {
 public:
  explicit PostingCursor(const PostingList* list) : list_(list) {}

  bool AtEnd() const { return pos_ >= list_->doc_count(); }
  DocId doc() const { return list_->doc_at(pos_); }
  uint32_t tf() const { return list_->tf_at(pos_); }
  std::span<const Offset> offsets() {
    list_->DecodeOffsets(pos_, &scratch_);
    return scratch_;
  }

  // Posting index the cursor sits on (operators diff it across SkipTo to
  // count skip hits).
  size_t position() const { return pos_; }

  void Next() { ++pos_; }
  // Advances to the first posting with doc >= target (galloping skip).
  void SkipTo(DocId target, uint64_t* probes = nullptr) {
    pos_ = list_->GallopTo(pos_, target, probes);
  }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
  std::vector<Offset> scratch_;
};

// Document-granular cursor that touches only the doc/tf arrays (the CA
// scan). Same navigation interface as PostingCursor minus offsets().
class CountCursor {
 public:
  explicit CountCursor(const PostingList* list) : list_(list) {}

  bool AtEnd() const { return pos_ >= list_->doc_count(); }
  DocId doc() const { return list_->doc_at(pos_); }
  uint32_t tf() const { return list_->tf_at(pos_); }

  size_t position() const { return pos_; }

  void Next() { ++pos_; }
  void SkipTo(DocId target, uint64_t* probes = nullptr) {
    pos_ = list_->GallopTo(pos_, target, probes);
  }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_POSTING_LIST_H_
