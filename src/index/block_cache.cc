#include "index/block_cache.h"

namespace graft::index {

BlockCacheTls& TlsBlockCacheCounters() {
  thread_local BlockCacheTls tls;
  return tls;
}

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

uint64_t BlockCache::NextGeneration() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

BlockCache::BlockPtr BlockCache::Lookup(uint64_t generation, uint32_t term,
                                        uint32_t block, BlockKind kind) {
  const Key key{generation, term, block, kind};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      hits_.fetch_add(1, std::memory_order_relaxed);
      ++TlsBlockCacheCounters().hits;
      return it->second->value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  ++TlsBlockCacheCounters().misses;
  return nullptr;
}

void BlockCache::Insert(uint64_t generation, uint32_t term, uint32_t block,
                        BlockKind kind, BlockPtr value) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (kind == BlockKind::kFull) {
    payload_decodes_.fetch_add(1, std::memory_order_relaxed);
    ++TlsBlockCacheCounters().payload_decodes;
  }
  const Key key{generation, term, block, kind};
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      // A concurrent decoder won the race; keep the resident entry (the
      // bytes are identical) and just refresh recency.
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, std::move(value)});
      map_[key] = lru_.begin();
      bytes_ += kEntryCharge;
      while (bytes_ > capacity_bytes_ && lru_.size() > 1) {
        map_.erase(lru_.back().key);
        lru_.pop_back();
        bytes_ -= kEntryCharge;
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    TlsBlockCacheCounters().evictions += evicted;
  }
}

void BlockCache::EraseGeneration(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.generation == generation) {
      map_.erase(it->key);
      bytes_ -= kEntryCharge;
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

BlockCache::Snapshot BlockCache::snapshot() const {
  Snapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.payload_decodes = payload_decodes_.load(std::memory_order_relaxed);
  s.capacity_bytes = capacity_bytes_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.bytes = bytes_;
    s.entries = lru_.size();
  }
  return s;
}

}  // namespace graft::index
