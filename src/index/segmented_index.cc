#include "index/segmented_index.h"

#include <algorithm>

namespace graft::index {

StatusOr<SegmentedIndex> SegmentedIndex::BuildFromMonolithic(
    const InvertedIndex& index, size_t num_segments) {
  if (num_segments == 0) {
    return Status::InvalidArgument("num_segments must be >= 1");
  }
  const uint64_t docs = index.doc_count();
  const size_t n = docs == 0
                       ? 1
                       : std::min<size_t>(num_segments,
                                          static_cast<size_t>(docs));

  SegmentedIndex segmented;
  segmented.doc_count_ = docs;
  segmented.total_words_ = index.total_words();

  // One shared global-frequency table; term ids are identical across
  // segments because every segment interns the vocabulary in order.
  const size_t vocab = index.term_count();
  segmented.global_doc_freq_.resize(vocab);
  segmented.global_collection_freq_.resize(vocab);
  for (TermId t = 0; t < vocab; ++t) {
    segmented.global_doc_freq_[t] = index.DocFreq(t);
    segmented.global_collection_freq_[t] = index.CollectionFreq(t);
  }

  segmented.segments_.resize(n);
  std::vector<Offset> offsets_scratch;
  for (size_t s = 0; s < n; ++s) {
    Segment& seg = segmented.segments_[s];
    const DocId begin = static_cast<DocId>(docs * s / n);
    const DocId end = static_cast<DocId>(docs * (s + 1) / n);
    seg.base = begin;

    // Intern the full vocabulary in dictionary order: local TermId ==
    // monolithic TermId, and locally-absent terms resolve to empty scans
    // instead of unknown keywords (invariant 1 of the header comment).
    for (TermId t = 0; t < vocab; ++t) {
      const TermId local = seg.index.InternTerm(index.TermText(t));
      if (local != t) {
        return Status::Internal("segment term interning diverged");
      }
    }

    // Slice every posting list to [begin, end), rebasing doc ids.
    for (TermId t = 0; t < vocab; ++t) {
      const PostingList& list = index.postings(t);
      PostingList* local = seg.index.mutable_postings(t);
      for (size_t p = list.GallopTo(0, begin);
           p < list.doc_count() && list.doc_at(p) < end; ++p) {
        list.DecodeOffsets(p, &offsets_scratch);
        local->AddDocument(list.doc_at(p) - begin, offsets_scratch);
      }
    }

    // Local document lengths (per-document statistics resolve locally).
    std::vector<uint32_t> lengths(index.doc_lengths().begin() + begin,
                                  index.doc_lengths().begin() + end);
    uint64_t local_words = 0;
    for (const uint32_t length : lengths) {
      local_words += length;
    }
    seg.index.SetDocLengths(std::move(lengths), local_words);

    // Per-segment block-max metadata over the rebased slice, so each
    // segment can prune independently against its own local threshold.
    // Follows the source index: a v3-loaded index has no metadata and its
    // segments must not prune either (EXPLAIN reports the same verdict).
    if (index.has_block_max()) {
      seg.index.BuildBlockMax();
    }

    seg.stats.doc_count = docs;
    seg.stats.total_words = index.total_words();
    seg.stats.doc_freq = segmented.global_doc_freq_.data();
    seg.stats.collection_freq = segmented.global_collection_freq_.data();
  }
  return segmented;
}

}  // namespace graft::index
