// Basic identifier types shared across the index, algebra, and executor.

#ifndef GRAFT_INDEX_TYPES_H_
#define GRAFT_INDEX_TYPES_H_

#include <cstdint>
#include <limits>

namespace graft {

using DocId = uint32_t;
using TermId = uint32_t;
// A term position within a document (the paper's "offset").
using Offset = uint32_t;

inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();
// The "empty position" symbol ∅ of MCalc: the keyword's presence is
// inconsequential to the match. Sorts after every real offset.
inline constexpr Offset kEmptyOffset = std::numeric_limits<Offset>::max();

}  // namespace graft

#endif  // GRAFT_INDEX_TYPES_H_
