// Generation-keyed LRU cache of decoded posting blocks — the only path
// between a v5 mmap-loaded index's packed bytes and the query engine.
//
// A packed PostingList never materializes its arrays. Cursor and accessor
// reads resolve (term, block) pairs through this cache: a hit returns the
// already-decoded 128-entry block, a miss bit-unpacks the block from the
// mapped payload bytes and inserts it. Two decode granularities exist so
// block-max pruning can align on doc ids without paying for score
// payloads:
//
//   kDocs  doc-id column only — what GallopTo and doc_at need;
//   kFull  docs + tfs + per-doc position-byte offsets — what scoring
//          (tf_at) and position decoding (DecodeOffsets) need.
//
// Keys carry a GENERATION: a process-unique id stamped on every mmap load
// (BlockCache::NextGeneration). A hot reload loads the new file under a
// fresh generation, so old entries can never serve new-index reads; the
// server calls EraseGeneration(old) after the swap so the dead entries
// release their memory immediately instead of aging out of the LRU.
//
// Metering: hits / misses / evictions / inserted bytes are kept twice —
// process-wide atomics (snapshot(): /stats, /metrics) and a thread-local
// accumulator (TlsBlockCacheCounters: captured around query execution
// into ExecStats, so EXPLAIN ANALYZE attributes cache traffic per query).
//
// Thread safety: all public methods are safe for concurrent use. Lookup
// and Insert are separate calls so the decode itself runs OUTSIDE the
// cache mutex; two threads missing the same block decode it twice and
// both inserts are accepted (last one wins) — wasted work, never a wrong
// answer, since decoding is deterministic.

#ifndef GRAFT_INDEX_BLOCK_CACHE_H_
#define GRAFT_INDEX_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "index/index_format.h"

namespace graft::index {

enum class BlockKind : uint8_t { kDocs = 0, kFull = 1 };

// One decoded 128-entry posting block. For kDocs entries only `docs` is
// populated; `off_start[i]` is the byte offset (into the term's position
// blob) of posting i's varint run, with one extra delimiting entry.
struct DecodedBlock {
  uint32_t count = 0;
  uint32_t docs[kFmtV5BlockSize];
  uint32_t tfs[kFmtV5BlockSize];
  uint32_t off_start[kFmtV5BlockSize + 1];
};

// Per-thread cache-traffic accumulator, reset-and-harvested around query
// execution by the engine (src/core/engine.cc).
struct BlockCacheTls {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t payload_decodes = 0;  // kFull misses: blocks whose score payload
                                 // was actually unpacked
};
BlockCacheTls& TlsBlockCacheCounters();

class BlockCache {
 public:
  using BlockPtr = std::shared_ptr<const DecodedBlock>;

  // `capacity_bytes` bounds the decoded-block working set (0 = a single
  // block, effectively uncached). Entries are charged sizeof(DecodedBlock)
  // plus bookkeeping.
  explicit BlockCache(size_t capacity_bytes);

  // Process-unique generation id for a freshly loaded index.
  static uint64_t NextGeneration();

  // Returns the cached block or null; counts a hit or miss (global + TLS).
  BlockPtr Lookup(uint64_t generation, uint32_t term, uint32_t block,
                  BlockKind kind);
  // Publishes a freshly decoded block, evicting LRU entries over capacity.
  // `kind == kFull` counts a payload decode.
  void Insert(uint64_t generation, uint32_t term, uint32_t block,
              BlockKind kind, BlockPtr value);

  // Drops every entry of `generation` (hot-reload invalidation).
  void EraseGeneration(uint64_t generation);

  struct Snapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    uint64_t payload_decodes = 0;
    uint64_t bytes = 0;           // current resident decoded bytes
    uint64_t capacity_bytes = 0;
    uint64_t entries = 0;
  };
  Snapshot snapshot() const;

  // Bytes charged per resident entry (block + bookkeeping); public so
  // tests and capacity planning can size caches in whole entries.
  static constexpr size_t kEntryCharge = sizeof(DecodedBlock) + 128;

 private:
  struct Key {
    uint64_t generation;
    uint32_t term;
    uint32_t block;
    BlockKind kind;
    bool operator==(const Key& o) const {
      return generation == o.generation && term == o.term &&
             block == o.block && kind == o.kind;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.generation * 0x9e3779b97f4a7c15ULL;
      h ^= (uint64_t{k.term} << 33) | (uint64_t{k.block} << 1) |
           static_cast<uint64_t>(k.kind);
      h *= 0xff51afd7ed558ccdULL;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };
  struct Entry {
    Key key;
    BlockPtr value;
  };

  const size_t capacity_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  size_t bytes_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> payload_decodes_{0};
};

}  // namespace graft::index

#endif  // GRAFT_INDEX_BLOCK_CACHE_H_
