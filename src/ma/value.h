// Tuple values flowing through GRAFT plans.
//
// Match tables proper contain only positions (§3.2), but optimized plans
// interleave matching and scoring (§4.3), so intermediate tuples may also
// carry internal scores (hosted SA state) and counts (eager counting /
// pre-counting). Value is a small tagged union of the three.

#ifndef GRAFT_MA_VALUE_H_
#define GRAFT_MA_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/types.h"
#include "sa/internal_score.h"

namespace graft::ma {

struct Value {
  enum class Kind : uint8_t { kPos, kScore, kCount };

  Kind kind = Kind::kPos;
  Offset pos = kEmptyOffset;   // kPos (kEmptyOffset encodes ∅)
  uint64_t count = 0;          // kCount
  sa::InternalScore score;     // kScore

  static Value Pos(Offset offset) {
    Value v;
    v.kind = Kind::kPos;
    v.pos = offset;
    return v;
  }
  static Value EmptyPos() { return Pos(kEmptyOffset); }
  static Value Count(uint64_t count) {
    Value v;
    v.kind = Kind::kCount;
    v.count = count;
    return v;
  }
  static Value Score(sa::InternalScore score) {
    Value v;
    v.kind = Kind::kScore;
    v.score = std::move(score);
    return v;
  }

  bool is_empty_pos() const {
    return kind == Kind::kPos && pos == kEmptyOffset;
  }

  std::string ToString() const;
};

// A plan tuple: the implicit document column plus the schema's values.
struct Tuple {
  DocId doc = kInvalidDoc;
  std::vector<Value> values;
};

}  // namespace graft::ma

#endif  // GRAFT_MA_VALUE_H_
