#include "ma/match_table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace graft::ma {

std::string Value::ToString() const {
  char buf[64];
  switch (kind) {
    case Kind::kPos:
      if (pos == kEmptyOffset) return "∅";
      std::snprintf(buf, sizeof(buf), "%u", pos);
      return buf;
    case Kind::kCount:
      std::snprintf(buf, sizeof(buf), "#%llu",
                    static_cast<unsigned long long>(count));
      return buf;
    case Kind::kScore:
      return score.ToString();
  }
  return "?";
}

std::string MatchTable::ToString() const {
  std::string out = schema.ToString() + "\n";
  for (const Tuple& row : rows) {
    out += "  ⟨" + std::to_string(row.doc);
    for (const Value& value : row.values) {
      out += ", " + value.ToString();
    }
    out += "⟩\n";
  }
  return out;
}

int CompareValue(const Value& left, const Value& right) {
  if (left.kind != right.kind) {
    return left.kind < right.kind ? -1 : 1;
  }
  switch (left.kind) {
    case Value::Kind::kPos:
      if (left.pos != right.pos) return left.pos < right.pos ? -1 : 1;
      return 0;
    case Value::Kind::kCount:
      if (left.count != right.count) return left.count < right.count ? -1 : 1;
      return 0;
    case Value::Kind::kScore: {
      if (left.score.a != right.score.a) {
        return left.score.a < right.score.a ? -1 : 1;
      }
      if (left.score.b != right.score.b) {
        return left.score.b < right.score.b ? -1 : 1;
      }
      return 0;
    }
  }
  return 0;
}

int CompareTuple(const Tuple& left, const Tuple& right) {
  if (left.doc != right.doc) return left.doc < right.doc ? -1 : 1;
  const size_t n = std::min(left.values.size(), right.values.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = CompareValue(left.values[i], right.values[i]);
    if (c != 0) return c;
  }
  if (left.values.size() != right.values.size()) {
    return left.values.size() < right.values.size() ? -1 : 1;
  }
  return 0;
}

bool TablesEqual(const MatchTable& left, const MatchTable& right,
                 double score_tolerance) {
  if (left.schema.columns.size() != right.schema.columns.size()) return false;
  for (size_t i = 0; i < left.schema.columns.size(); ++i) {
    if (left.schema.columns[i].name != right.schema.columns[i].name ||
        left.schema.columns[i].kind != right.schema.columns[i].kind) {
      return false;
    }
  }
  if (left.rows.size() != right.rows.size()) return false;
  for (size_t r = 0; r < left.rows.size(); ++r) {
    const Tuple& a = left.rows[r];
    const Tuple& b = right.rows[r];
    if (a.doc != b.doc || a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      const Value& x = a.values[i];
      const Value& y = b.values[i];
      if (x.kind != y.kind) return false;
      switch (x.kind) {
        case Value::Kind::kPos:
          if (x.pos != y.pos) return false;
          break;
        case Value::Kind::kCount:
          if (x.count != y.count) return false;
          break;
        case Value::Kind::kScore:
          if (!x.score.ApproxEquals(y.score, score_tolerance)) return false;
          break;
      }
    }
  }
  return true;
}

StatusOr<std::vector<ScoredDoc>> ExtractRankedResults(
    const MatchTable& table) {
  if (table.schema.columns.size() != 1 ||
      table.schema.columns[0].kind != Column::Kind::kScore) {
    return Status::InvalidArgument(
        "ranked extraction expects a single score column, got " +
        table.schema.ToString());
  }
  std::vector<ScoredDoc> results;
  results.reserve(table.rows.size());
  for (const Tuple& row : table.rows) {
    results.push_back(ScoredDoc{row.doc, row.values[0].score.a});
  }
  std::sort(results.begin(), results.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  return results;
}

}  // namespace graft::ma
