// Hosted Scoring-Algebra expressions (Section 4.3).
//
// In GRAFT, SA operators are hosted by MA's π and γ: ⊘, ⊚, α and ω live in
// generalized-projection expressions; ⊕ lives in group-by aggregation.
// ScoreExpr is the expression language of the π host.

#ifndef GRAFT_MA_SCORE_EXPR_H_
#define GRAFT_MA_SCORE_EXPR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "ma/schema.h"
#include "ma/value.h"
#include "sa/scoring_scheme.h"

namespace graft::ma {

struct ScoreExpr;
using ScoreExprPtr = std::unique_ptr<ScoreExpr>;

struct ScoreExpr {
  enum class Kind {
    kInitPos,       // α(doc, column, cell) over a position column (∅-aware)
    kInitFromCount, // α over a pre-counted keyword, scaled by the count
                    // column via ⊗ (the count stands for that many equal
                    // alternate cells; valid for non-positional schemes)
    kColRef,        // reference to an existing score column
    kConj,          // ⊘(left, right)
    kDisj,          // ⊚(left, right)
    kScaleByCount,  // ⊗(left, value of a count column)
  };

  Kind kind;
  // kInitPos / kColRef / kScaleByCount / kInitFromCount: the referenced
  // column name (position, score, or count respectively).
  std::string column;
  ScoreExprPtr left;
  ScoreExprPtr right;

  ScoreExprPtr Clone() const;
  std::string ToString() const;

  static ScoreExprPtr InitPos(std::string pos_column);
  static ScoreExprPtr InitFromCount(std::string count_column);
  static ScoreExprPtr ColRef(std::string score_column);
  static ScoreExprPtr Conj(ScoreExprPtr l, ScoreExprPtr r);
  static ScoreExprPtr Disj(ScoreExprPtr l, ScoreExprPtr r);
  static ScoreExprPtr ScaleByCount(ScoreExprPtr l, std::string count_column);
};

// Compiled form: column names resolved to input indexes for fast
// evaluation. Build once per (expr, input schema); evaluate per row.
class CompiledScoreExpr {
 public:
  static StatusOr<CompiledScoreExpr> Compile(const ScoreExpr& expr,
                                             const Schema& input);

  // Evaluates over one tuple. `doc_ctx` is the current document's context;
  // `col_ctx` maps input column index -> per-document ColumnContext
  // (precomputed by the evaluator for each doc). The overload taking
  // `scratch` lets hot paths reuse the step buffer across rows.
  sa::InternalScore Evaluate(const sa::ScoringScheme& scheme,
                             const sa::DocContext& doc_ctx,
                             const std::vector<sa::ColumnContext>& col_ctx,
                             const Tuple& row) const;
  sa::InternalScore Evaluate(const sa::ScoringScheme& scheme,
                             const sa::DocContext& doc_ctx,
                             const std::vector<sa::ColumnContext>& col_ctx,
                             const Tuple& row,
                             std::vector<sa::InternalScore>* scratch) const;

 private:
  struct Step {
    ScoreExpr::Kind kind;
    int column_index = -1;  // input column for leaf/scale kinds
    int left = -1;          // step indexes for kConj/kDisj/kScaleByCount
    int right = -1;
  };

  static StatusOr<int> CompileNode(const ScoreExpr& expr, const Schema& input,
                                   std::vector<Step>* steps);

  std::vector<Step> steps_;  // postorder; last step is the root
};

}  // namespace graft::ma

#endif  // GRAFT_MA_SCORE_EXPR_H_
