#include "ma/reference_evaluator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace graft::ma {

StatusOr<MatchTable> ReferenceEvaluator::Evaluate(
    const PlanNode& root) const {
  return EvaluateNode(root);
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateNode(
    const PlanNode& node) const {
  switch (node.kind) {
    case OpKind::kAtom: return EvaluateAtom(node);
    case OpKind::kPreCountAtom: return EvaluatePreCount(node);
    case OpKind::kJoin: return EvaluateJoin(node);
    case OpKind::kOuterUnion: return EvaluateUnion(node);
    case OpKind::kSelect: return EvaluateSelect(node);
    case OpKind::kProject: return EvaluateProject(node);
    case OpKind::kAntiJoin: return EvaluateAntiJoin(node);
    case OpKind::kGroup: return EvaluateGroup(node);
    case OpKind::kAltElim: return EvaluateAltElim(node);
    case OpKind::kSort: return EvaluateSort(node);
  }
  return Status::Internal("unknown plan node kind");
}

sa::DocContext ReferenceEvaluator::MakeDocContext(DocId doc) const {
  sa::DocContext ctx;
  ctx.doc = doc;
  ctx.length = stats_.DocLength(doc);
  ctx.collection_size = stats_.CollectionSize();
  ctx.avg_doc_length = stats_.AverageDocLength();
  return ctx;
}

std::vector<sa::ColumnContext> ReferenceEvaluator::MakeColumnContexts(
    const Schema& schema, DocId doc) const {
  std::vector<sa::ColumnContext> contexts(schema.columns.size());
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const Column& column = schema.columns[i];
    if (column.kind == Column::Kind::kScore ||
        column.term == kInvalidTerm) {
      continue;
    }
    contexts[i].term = column.term;
    contexts[i].doc_freq = stats_.DocFreq(column.term);
    contexts[i].tf_in_doc =
        stats_.TermFreqInDoc(column.term, doc, &tf_probes_[column.term]);
  }
  return contexts;
}

Status ReferenceEvaluator::ApplyPredicates(
    const std::vector<mcalc::PredicateCall>& predicates, const Schema& schema,
    const Tuple& row, bool* keep) const {
  *keep = true;
  for (const mcalc::PredicateCall& call : predicates) {
    auto result = mcalc::EvaluatePredicate(
        call, [&schema, &row](mcalc::VarId var) -> Offset {
          const int idx = schema.FindVar(var);
          return idx < 0 ? kEmptyOffset : row.values[idx].pos;
        });
    if (!result.ok()) return result.status();
    if (!*result) {
      *keep = false;
      return Status::Ok();
    }
  }
  return Status::Ok();
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateAtom(
    const PlanNode& node) const {
  MatchTable table;
  table.schema = node.schema;
  if (node.term == kInvalidTerm) {
    return table;  // Unknown keyword: empty scan.
  }
  const index::PostingList& list = stats_.index().postings(node.term);
  for (size_t i = 0; i < list.doc_count(); ++i) {
    const DocId doc = list.doc_at(i);
    for (const Offset offset : list.OffsetsAt(i)) {
      Tuple row;
      row.doc = doc;
      row.values.push_back(Value::Pos(offset));
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluatePreCount(
    const PlanNode& node) const {
  MatchTable table;
  table.schema = node.schema;
  if (node.term == kInvalidTerm) {
    return table;
  }
  const index::PostingList& list = stats_.index().postings(node.term);
  for (size_t i = 0; i < list.doc_count(); ++i) {
    Tuple row;
    row.doc = list.doc_at(i);
    row.values.push_back(Value::Count(list.tf_at(i)));
    table.rows.push_back(std::move(row));
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateJoin(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(const MatchTable left,
                         EvaluateNode(*node.children[0]));
  GRAFT_ASSIGN_OR_RETURN(const MatchTable right,
                         EvaluateNode(*node.children[1]));
  MatchTable table;
  table.schema = node.schema;

  // Merge on doc (both inputs are doc-ordered); cross product within doc.
  size_t li = 0;
  size_t ri = 0;
  while (li < left.rows.size() && ri < right.rows.size()) {
    const DocId ld = left.rows[li].doc;
    const DocId rd = right.rows[ri].doc;
    if (ld < rd) {
      ++li;
      continue;
    }
    if (rd < ld) {
      ++ri;
      continue;
    }
    size_t lend = li;
    while (lend < left.rows.size() && left.rows[lend].doc == ld) ++lend;
    size_t rend = ri;
    while (rend < right.rows.size() && right.rows[rend].doc == ld) ++rend;
    for (size_t i = li; i < lend; ++i) {
      for (size_t j = ri; j < rend; ++j) {
        Tuple row;
        row.doc = ld;
        row.values = left.rows[i].values;
        row.values.insert(row.values.end(), right.rows[j].values.begin(),
                          right.rows[j].values.end());
        bool keep = true;
        GRAFT_RETURN_IF_ERROR(
            ApplyPredicates(node.predicates, table.schema, row, &keep));
        if (keep) {
          table.rows.push_back(std::move(row));
        }
      }
    }
    li = lend;
    ri = rend;
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateUnion(
    const PlanNode& node) const {
  MatchTable table;
  table.schema = node.schema;

  struct Tagged {
    Tuple row;
    size_t child;
    size_t index;
  };
  std::vector<Tagged> tagged;
  for (size_t c = 0; c < node.children.size(); ++c) {
    GRAFT_ASSIGN_OR_RETURN(const MatchTable child,
                           EvaluateNode(*node.children[c]));
    // Map output column -> child column index (-1: pad with ∅).
    std::vector<int> mapping(table.schema.columns.size(), -1);
    for (size_t o = 0; o < table.schema.columns.size(); ++o) {
      const Column& out = table.schema.columns[o];
      mapping[o] = out.kind == Column::Kind::kPos
                       ? child.schema.FindVar(out.var)
                       : child.schema.Find(out.name);
    }
    for (size_t r = 0; r < child.rows.size(); ++r) {
      Tuple row;
      row.doc = child.rows[r].doc;
      row.values.reserve(table.schema.columns.size());
      for (size_t o = 0; o < table.schema.columns.size(); ++o) {
        if (mapping[o] >= 0) {
          row.values.push_back(child.rows[r].values[mapping[o]]);
        } else if (table.schema.columns[o].kind == Column::Kind::kCount) {
          row.values.push_back(Value::Count(0));  // 0 encodes ∅.
        } else {
          row.values.push_back(Value::EmptyPos());
        }
      }
      tagged.push_back(Tagged{std::move(row), c, r});
    }
  }
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.row.doc != b.row.doc) return a.row.doc < b.row.doc;
                     if (a.child != b.child) return a.child < b.child;
                     return a.index < b.index;
                   });
  table.rows.reserve(tagged.size());
  for (Tagged& t : tagged) {
    table.rows.push_back(std::move(t.row));
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateSelect(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(MatchTable input, EvaluateNode(*node.children[0]));
  MatchTable table;
  table.schema = node.schema;
  for (Tuple& row : input.rows) {
    bool keep = true;
    GRAFT_RETURN_IF_ERROR(
        ApplyPredicates(node.predicates, table.schema, row, &keep));
    if (keep) {
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateProject(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(const MatchTable input,
                         EvaluateNode(*node.children[0]));
  MatchTable table;
  table.schema = node.schema;

  // Precompile item accessors.
  struct Compiled {
    int source = -1;
    std::vector<int> count_product;
    std::optional<CompiledScoreExpr> expr;
    bool finalize = false;
  };
  std::vector<Compiled> compiled;
  compiled.reserve(node.items.size());
  for (const ProjectItem& item : node.items) {
    Compiled c;
    if (!item.source.empty()) {
      c.source = input.schema.Find(item.source);
      if (c.source < 0) {
        return Status::Internal("unresolved projection source: " +
                                item.source);
      }
    } else if (!item.count_product.empty()) {
      for (const std::string& source : item.count_product) {
        c.count_product.push_back(input.schema.Find(source));
      }
    } else {
      if (scheme_ == nullptr) {
        return Status::FailedPrecondition(
            "plan hosts scoring operators but no scheme was provided");
      }
      GRAFT_ASSIGN_OR_RETURN(
          auto compiled_expr,
          CompiledScoreExpr::Compile(*item.expr, input.schema));
      c.expr.emplace(std::move(compiled_expr));
      c.finalize = item.finalize;
    }
    compiled.push_back(std::move(c));
  }

  DocId current_doc = kInvalidDoc;
  sa::DocContext doc_ctx;
  std::vector<sa::ColumnContext> col_ctx;
  for (const Tuple& row : input.rows) {
    if (row.doc != current_doc) {
      current_doc = row.doc;
      doc_ctx = MakeDocContext(current_doc);
      col_ctx = MakeColumnContexts(input.schema, current_doc);
    }
    Tuple out;
    out.doc = row.doc;
    out.values.reserve(compiled.size());
    for (const Compiled& c : compiled) {
      if (c.source >= 0) {
        out.values.push_back(row.values[c.source]);
      } else if (!c.count_product.empty()) {
        uint64_t product = 1;
        for (const int idx : c.count_product) {
          product *= std::max<uint64_t>(1, row.values[idx].count);
        }
        out.values.push_back(Value::Count(product));
      } else {
        sa::InternalScore score =
            c.expr->Evaluate(*scheme_, doc_ctx, col_ctx, row);
        if (c.finalize) {
          score = sa::InternalScore(
              scheme_->Finalize(doc_ctx, query_ctx_, score));
        }
        out.values.push_back(Value::Score(std::move(score)));
      }
    }
    table.rows.push_back(std::move(out));
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateAntiJoin(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(MatchTable left, EvaluateNode(*node.children[0]));
  GRAFT_ASSIGN_OR_RETURN(const MatchTable right,
                         EvaluateNode(*node.children[1]));
  std::set<DocId> right_docs;
  for (const Tuple& row : right.rows) {
    right_docs.insert(row.doc);
  }
  MatchTable table;
  table.schema = node.schema;
  for (Tuple& row : left.rows) {
    if (right_docs.count(row.doc) == 0) {
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateGroup(
    const PlanNode& node) const {
  if (!node.group.score_aggs.empty() && scheme_ == nullptr) {
    return Status::FailedPrecondition(
        "plan hosts ⊕ aggregation but no scheme was provided");
  }
  GRAFT_ASSIGN_OR_RETURN(const MatchTable input,
                         EvaluateNode(*node.children[0]));
  MatchTable table;
  table.schema = node.schema;

  const Schema& in_schema = input.schema;
  std::vector<int> key_idx;
  for (const std::string& key : node.group.keys) {
    key_idx.push_back(in_schema.Find(key));
  }
  struct Agg {
    int input = -1;
    int scale = -1;
  };
  std::vector<Agg> aggs;
  for (const GroupSpec::ScoreAgg& agg : node.group.score_aggs) {
    Agg a;
    a.input = in_schema.Find(agg.input);
    a.scale = agg.scale_count.empty() ? -1 : in_schema.Find(agg.scale_count);
    aggs.push_back(a);
  }
  const bool want_count = !node.group.count_output.empty();
  const int count_in = node.group.count_input.empty()
                           ? -1
                           : in_schema.Find(node.group.count_input);

  struct GroupState {
    std::vector<Value> key_values;
    std::vector<sa::InternalScore> scores;
    std::vector<bool> initialized;
    uint64_t count = 0;
  };

  // Input is doc-ordered; process one doc run at a time, groups within a
  // run in first-seen order (this preserves match-table row order for
  // non-commutative ⊕).
  size_t i = 0;
  while (i < input.rows.size()) {
    const DocId doc = input.rows[i].doc;
    size_t end = i;
    while (end < input.rows.size() && input.rows[end].doc == doc) ++end;

    std::vector<GroupState> groups;
    for (size_t r = i; r < end; ++r) {
      const Tuple& row = input.rows[r];
      std::vector<Value> key_values;
      key_values.reserve(key_idx.size());
      for (const int idx : key_idx) {
        key_values.push_back(row.values[idx]);
      }
      GroupState* state = nullptr;
      for (GroupState& g : groups) {
        bool same = true;
        for (size_t k = 0; k < key_values.size(); ++k) {
          if (CompareValue(g.key_values[k], key_values[k]) != 0) {
            same = false;
            break;
          }
        }
        if (same) {
          state = &g;
          break;
        }
      }
      if (state == nullptr) {
        groups.emplace_back();
        state = &groups.back();
        state->key_values = std::move(key_values);
        state->scores.resize(aggs.size());
        state->initialized.assign(aggs.size(), false);
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        sa::InternalScore contribution = row.values[aggs[a].input].score;
        if (aggs[a].scale >= 0) {
          // Counts of 0 encode ∅ (padded column) and weigh as 1.
          const uint64_t weight =
              std::max<uint64_t>(1, row.values[aggs[a].scale].count);
          if (weight != 1) {
            contribution = scheme_->Scale(contribution, weight);
          }
        }
        if (state->initialized[a]) {
          state->scores[a] = scheme_->Alt(state->scores[a], contribution);
        } else {
          state->scores[a] = std::move(contribution);
          state->initialized[a] = true;
        }
      }
      if (want_count) {
        state->count += count_in >= 0 ? row.values[count_in].count : 1;
      }
    }

    for (GroupState& g : groups) {
      Tuple out;
      out.doc = doc;
      out.values.reserve(table.schema.columns.size());
      for (Value& key : g.key_values) {
        out.values.push_back(std::move(key));
      }
      for (sa::InternalScore& score : g.scores) {
        out.values.push_back(Value::Score(std::move(score)));
      }
      if (want_count) {
        out.values.push_back(Value::Count(g.count));
      }
      table.rows.push_back(std::move(out));
    }
    i = end;
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateAltElim(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(MatchTable input, EvaluateNode(*node.children[0]));
  MatchTable table;
  table.schema = node.schema;
  DocId last = kInvalidDoc;
  for (Tuple& row : input.rows) {
    if (row.doc != last) {
      last = row.doc;
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

StatusOr<MatchTable> ReferenceEvaluator::EvaluateSort(
    const PlanNode& node) const {
  GRAFT_ASSIGN_OR_RETURN(MatchTable table, EvaluateNode(*node.children[0]));
  // τ sorts by the canonical column order — position columns in ascending
  // variable order, then others in name order — so the match-table row
  // order is independent of join order (score isolation requires the table,
  // not the plan, to define the order ⊕ folds in).
  std::vector<size_t> perm;
  perm.reserve(table.schema.columns.size());
  for (size_t i = 0; i < table.schema.columns.size(); ++i) perm.push_back(i);
  const Schema& schema = table.schema;
  std::stable_sort(perm.begin(), perm.end(), [&schema](size_t a, size_t b) {
    const Column& ca = schema.columns[a];
    const Column& cb = schema.columns[b];
    const bool pa = ca.kind == Column::Kind::kPos;
    const bool pb = cb.kind == Column::Kind::kPos;
    if (pa != pb) return pa;  // positions first
    if (pa && pb) return ca.var < cb.var;
    return ca.name < cb.name;
  });
  std::stable_sort(table.rows.begin(), table.rows.end(),
                   [&perm](const Tuple& a, const Tuple& b) {
                     if (a.doc != b.doc) return a.doc < b.doc;
                     for (const size_t i : perm) {
                       const int c = CompareValue(a.values[i], b.values[i]);
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  return table;
}

}  // namespace graft::ma
