// The materializing reference evaluator: the semantic oracle for score
// consistency (Definition 1).
//
// Evaluates any resolved logical plan bottom-up, fully materializing every
// intermediate table. Slow by design (it eagerly materializes the match
// table, the paper's worst case), but simple enough to be obviously
// correct. Every streaming/optimized execution in this repository is
// differential-tested against it.

#ifndef GRAFT_MA_REFERENCE_EVALUATOR_H_
#define GRAFT_MA_REFERENCE_EVALUATOR_H_

#include <unordered_map>

#include "common/status.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "ma/plan.h"
#include "sa/scoring_scheme.h"

namespace graft::ma {

class ReferenceEvaluator {
 public:
  // `scheme` may be null when the plan hosts no scoring operators (a pure
  // matching subplan). `overlay` may be null.
  ReferenceEvaluator(const index::InvertedIndex* index,
                     const sa::ScoringScheme* scheme,
                     sa::QueryContext query_ctx,
                     const index::StatsOverlay* overlay = nullptr)
      : stats_(index, overlay), scheme_(scheme), query_ctx_(query_ctx) {}

  // The plan must have been resolved against the same index.
  StatusOr<MatchTable> Evaluate(const PlanNode& root) const;

 private:
  StatusOr<MatchTable> EvaluateNode(const PlanNode& node) const;

  StatusOr<MatchTable> EvaluateAtom(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluatePreCount(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateJoin(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateUnion(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateSelect(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateProject(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateAntiJoin(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateGroup(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateAltElim(const PlanNode& node) const;
  StatusOr<MatchTable> EvaluateSort(const PlanNode& node) const;

  // Builds the per-document contexts used by hosted α calls.
  sa::DocContext MakeDocContext(DocId doc) const;
  std::vector<sa::ColumnContext> MakeColumnContexts(const Schema& schema,
                                                    DocId doc) const;

  Status ApplyPredicates(const std::vector<mcalc::PredicateCall>& predicates,
                         const Schema& schema, const Tuple& row,
                         bool* keep) const;

  index::StatsView stats_;
  const sa::ScoringScheme* scheme_;
  sa::QueryContext query_ctx_;
  // Per-term galloping probes for #InDoc lookups: plan nodes visit docs in
  // ascending order, so seeding each lookup from the previous hit makes
  // the scan amortized O(1) (a backwards probe falls back to the cold
  // path). Mutable cache only — never observable in results; evaluators
  // are single-threaded by contract.
  mutable std::unordered_map<TermId, size_t> tf_probes_;
};

}  // namespace graft::ma

#endif  // GRAFT_MA_REFERENCE_EVALUATOR_H_
