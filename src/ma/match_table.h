// Materialized match tables (Section 3.2): ordered lists of match tuples.
// Tables are produced by the reference evaluator and consumed by tests and
// the score-consistency oracle. Rows and columns are both sequenced, and
// tables may contain duplicate rows (bag semantics).

#ifndef GRAFT_MA_MATCH_TABLE_H_
#define GRAFT_MA_MATCH_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ma/schema.h"
#include "ma/value.h"

namespace graft::ma {

struct MatchTable {
  Schema schema;
  std::vector<Tuple> rows;

  std::string ToString() const;
};

// Total order on values within one column (used by τ and by table
// comparison): positions ascend with ∅ last (∅ encodes as the max offset,
// so natural order suffices); counts ascend; scores compare by (a, b).
int CompareValue(const Value& left, const Value& right);
// Lexicographic (doc, values...) comparison.
int CompareTuple(const Tuple& left, const Tuple& right);

// True when the tables have identical schemas (column names/kinds) and
// identical row bags *as ordered lists*. Score cells compare with the given
// tolerance.
bool TablesEqual(const MatchTable& left, const MatchTable& right,
                 double score_tolerance = 1e-9);

// A ranked retrieval result.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  bool operator==(const ScoredDoc& other) const = default;
};

// Extracts ranked results from a table whose schema is a single score
// column holding finalized scores. Sorted by score descending, ties by doc
// ascending.
StatusOr<std::vector<ScoredDoc>> ExtractRankedResults(const MatchTable& table);

}  // namespace graft::ma

#endif  // GRAFT_MA_MATCH_TABLE_H_
