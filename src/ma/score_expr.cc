#include "ma/score_expr.h"

#include <algorithm>

namespace graft::ma {

ScoreExprPtr ScoreExpr::Clone() const {
  auto copy = std::make_unique<ScoreExpr>();
  copy->kind = kind;
  copy->column = column;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  return copy;
}

std::string ScoreExpr::ToString() const {
  switch (kind) {
    case Kind::kInitPos:
      return "α(" + column + ")";
    case Kind::kInitFromCount:
      return "α⊗(" + column + ")";
    case Kind::kColRef:
      return column;
    case Kind::kConj:
      return "(" + left->ToString() + " ⊘ " + right->ToString() + ")";
    case Kind::kDisj:
      return "(" + left->ToString() + " ⊚ " + right->ToString() + ")";
    case Kind::kScaleByCount:
      return "(" + left->ToString() + " ⊗ " + column + ")";
  }
  return "?";
}

ScoreExprPtr ScoreExpr::InitPos(std::string pos_column) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kInitPos;
  e->column = std::move(pos_column);
  return e;
}
ScoreExprPtr ScoreExpr::InitFromCount(std::string count_column) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kInitFromCount;
  e->column = std::move(count_column);
  return e;
}
ScoreExprPtr ScoreExpr::ColRef(std::string score_column) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kColRef;
  e->column = std::move(score_column);
  return e;
}
ScoreExprPtr ScoreExpr::Conj(ScoreExprPtr l, ScoreExprPtr r) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kConj;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}
ScoreExprPtr ScoreExpr::Disj(ScoreExprPtr l, ScoreExprPtr r) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kDisj;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}
ScoreExprPtr ScoreExpr::ScaleByCount(ScoreExprPtr l,
                                     std::string count_column) {
  auto e = std::make_unique<ScoreExpr>();
  e->kind = Kind::kScaleByCount;
  e->left = std::move(l);
  e->column = std::move(count_column);
  return e;
}

StatusOr<CompiledScoreExpr> CompiledScoreExpr::Compile(const ScoreExpr& expr,
                                                       const Schema& input) {
  CompiledScoreExpr compiled;
  auto root = CompileNode(expr, input, &compiled.steps_);
  if (!root.ok()) return root.status();
  return compiled;
}

StatusOr<int> CompiledScoreExpr::CompileNode(const ScoreExpr& expr,
                                             const Schema& input,
                                             std::vector<Step>* steps) {
  Step step;
  step.kind = expr.kind;
  switch (expr.kind) {
    case ScoreExpr::Kind::kInitPos: {
      const int idx = input.Find(expr.column);
      if (idx < 0 || input.columns[idx].kind != Column::Kind::kPos) {
        return Status::InvalidArgument("α over unknown position column: " +
                                       expr.column);
      }
      step.column_index = idx;
      break;
    }
    case ScoreExpr::Kind::kInitFromCount: {
      const int idx = input.Find(expr.column);
      if (idx < 0 || input.columns[idx].kind != Column::Kind::kCount) {
        return Status::InvalidArgument("α⊗ over unknown count column: " +
                                       expr.column);
      }
      step.column_index = idx;
      break;
    }
    case ScoreExpr::Kind::kColRef: {
      const int idx = input.Find(expr.column);
      if (idx < 0 || input.columns[idx].kind != Column::Kind::kScore) {
        return Status::InvalidArgument("unknown score column: " +
                                       expr.column);
      }
      step.column_index = idx;
      break;
    }
    case ScoreExpr::Kind::kConj:
    case ScoreExpr::Kind::kDisj: {
      GRAFT_ASSIGN_OR_RETURN(step.left,
                             CompileNode(*expr.left, input, steps));
      GRAFT_ASSIGN_OR_RETURN(step.right,
                             CompileNode(*expr.right, input, steps));
      break;
    }
    case ScoreExpr::Kind::kScaleByCount: {
      GRAFT_ASSIGN_OR_RETURN(step.left,
                             CompileNode(*expr.left, input, steps));
      const int idx = input.Find(expr.column);
      if (idx < 0 || input.columns[idx].kind != Column::Kind::kCount) {
        return Status::InvalidArgument("⊗ over unknown count column: " +
                                       expr.column);
      }
      step.column_index = idx;
      break;
    }
  }
  steps->push_back(step);
  return static_cast<int>(steps->size() - 1);
}

sa::InternalScore CompiledScoreExpr::Evaluate(
    const sa::ScoringScheme& scheme, const sa::DocContext& doc_ctx,
    const std::vector<sa::ColumnContext>& col_ctx, const Tuple& row) const {
  std::vector<sa::InternalScore> scratch;
  return Evaluate(scheme, doc_ctx, col_ctx, row, &scratch);
}

sa::InternalScore CompiledScoreExpr::Evaluate(
    const sa::ScoringScheme& scheme, const sa::DocContext& doc_ctx,
    const std::vector<sa::ColumnContext>& col_ctx, const Tuple& row,
    std::vector<sa::InternalScore>* scratch) const {
  // Evaluate postorder steps into a scratch stack indexed by step id.
  std::vector<sa::InternalScore>& results = *scratch;
  results.resize(steps_.size());
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    switch (step.kind) {
      case ScoreExpr::Kind::kInitPos:
        results[i] = scheme.Init(doc_ctx, col_ctx[step.column_index],
                                 row.values[step.column_index].pos);
        break;
      case ScoreExpr::Kind::kInitFromCount: {
        // Unit α over a pre-counted keyword. A count of 0 encodes ∅ (the
        // keyword column was padded by an outer union); otherwise
        // non-positional schemes never read the offset, so a representative
        // real offset of 0 stands in for "some occurrence". Any needed
        // multiplicity is expressed explicitly with kScaleByCount.
        const uint64_t count = row.values[step.column_index].count;
        if (count == 0) {
          results[i] =
              scheme.Init(doc_ctx, col_ctx[step.column_index], kEmptyOffset);
        } else {
          // The count IS the keyword's tf in this document; using it
          // directly spares a per-document statistics lookup.
          sa::ColumnContext ctx = col_ctx[step.column_index];
          ctx.tf_in_doc = static_cast<uint32_t>(count);
          results[i] = scheme.Init(doc_ctx, ctx, /*offset=*/0);
        }
        break;
      }
      case ScoreExpr::Kind::kColRef:
        results[i] = row.values[step.column_index].score;
        break;
      case ScoreExpr::Kind::kConj:
        results[i] = scheme.Conj(results[step.left], results[step.right]);
        break;
      case ScoreExpr::Kind::kDisj:
        results[i] = scheme.Disj(results[step.left], results[step.right]);
        break;
      case ScoreExpr::Kind::kScaleByCount: {
        // A count of 0 encodes ∅ (padded column): the row stands for
        // exactly one match row, so the scale factor is 1.
        const uint64_t count =
            std::max<uint64_t>(1, row.values[step.column_index].count);
        results[i] = count == 1 ? results[step.left]
                                : scheme.Scale(results[step.left], count);
        break;
      }
    }
  }
  return results.empty() ? sa::InternalScore() : std::move(results.back());
}

}  // namespace graft::ma
