// Logical GRAFT plans: Matching Algebra operators (Section 3.2) plus the
// hosted Scoring Algebra (Section 4.3).
//
// Operator inventory and their paper notation:
//   kAtom          A(k, d, p)     term-position index scan
//   kPreCountAtom  CA(k, d, c)    term-document index scan (Section 5.2.3)
//   kJoin          ⋈              natural join on d (+ residual predicates
//                                 once selections are pushed into it)
//   kOuterUnion    ⊎              outer bag-union; pads missing position
//                                 columns with ∅ (safe disjunction)
//   kSelect        σ              positional predicate filter
//   kProject       π              generalized projection; hosts α, ⊘, ⊚, ⊗
//                                 and ω
//   kAntiJoin      ▷              anti-join on d (negated keywords)
//   kGroup         γ              grouping; hosts ⊕ and COUNT
//   kAltElim       δ_A            alternate elimination (Section 5.2.3)
//   kSort          τ              lexicographic sort of the match table
//
// A plan whose matching operators (everything except π/γ hosting scoring)
// form a connected subtree below all scoring operators is score-isolated
// (Section 2). The optimizer's rewrites (src/core) interleave the layers.

#ifndef GRAFT_MA_PLAN_H_
#define GRAFT_MA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "ma/schema.h"
#include "ma/score_expr.h"
#include "mcalc/predicates.h"

namespace graft::ma {

enum class OpKind {
  kAtom,
  kPreCountAtom,
  kJoin,
  kOuterUnion,
  kSelect,
  kProject,
  kAntiJoin,
  kGroup,
  kAltElim,
  kSort,
};

std::string OpKindName(OpKind kind);

// One output of a generalized projection: either a passthrough of an input
// column or a computed score.
struct ProjectItem {
  std::string name;    // output column name
  std::string source;  // non-empty: passthrough of this input column
  ScoreExprPtr expr;   // else if set: computed score expression
  bool finalize = false;  // apply ω to the expression result
  // Else: count product over these count columns (eager counting's
  // "when two eagerly counted tuples join, their counts are multiplied";
  // counts of 0 encode ∅ and contribute a factor of 1).
  std::vector<std::string> count_product;

  ProjectItem() = default;
  ProjectItem(const ProjectItem& other) { *this = other; }
  ProjectItem& operator=(const ProjectItem& other) {
    name = other.name;
    source = other.source;
    expr = other.expr == nullptr ? nullptr : other.expr->Clone();
    finalize = other.finalize;
    count_product = other.count_product;
    return *this;
  }
  ProjectItem(ProjectItem&&) = default;
  ProjectItem& operator=(ProjectItem&&) = default;

  static ProjectItem Passthrough(std::string column) {
    ProjectItem item;
    item.name = column;
    item.source = std::move(column);
    return item;
  }
  static ProjectItem Scored(std::string name, ScoreExprPtr expr,
                            bool finalize = false) {
    ProjectItem item;
    item.name = std::move(name);
    item.expr = std::move(expr);
    item.finalize = finalize;
    return item;
  }
  static ProjectItem CountProduct(std::string name,
                                  std::vector<std::string> counts) {
    ProjectItem item;
    item.name = std::move(name);
    item.count_product = std::move(counts);
    return item;
  }
};

// γ specification. Groups by (d, keys...); aggregates score columns with ⊕
// (each input row's contribution optionally pre-scaled by a count column —
// the eager-aggregation bookkeeping of Section 5.2.1) and maintains counts.
struct GroupSpec {
  // Additional group-key columns beyond the implicit d (usually empty).
  std::vector<std::string> keys;

  struct ScoreAgg {
    std::string input;         // input score column
    std::string output;        // output score column
    std::string scale_count;   // optional count column weighting each row
  };
  std::vector<ScoreAgg> score_aggs;

  // Count maintenance: if count_output is set, emits a count column that is
  // COUNT(*) (count_input empty) or SUM(count_input).
  std::string count_output;
  std::string count_input;
  // Keyword whose occurrences the COUNT(*) column counts (eager counting
  // over one atom); gives the output count column its term identity so
  // hosted α⊗ calls can recover the keyword's statistics.
  std::string count_keyword;
};

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  OpKind kind;
  std::vector<PlanNodePtr> children;

  // kAtom / kPreCountAtom.
  std::string keyword;
  mcalc::VarId var = -1;        // kAtom: bound variable
  TermId term = kInvalidTerm;   // resolved by ResolvePlan
  std::string output_column;    // "p<var>" or count column name

  // kSelect and kJoin (residual predicates after selection pushing).
  std::vector<mcalc::PredicateCall> predicates;

  // kProject.
  std::vector<ProjectItem> items;

  // kGroup.
  GroupSpec group;

  // Resolved output schema (by ResolvePlan).
  Schema schema;

  PlanNodePtr Clone() const;
};

// ---- Constructors ----
PlanNodePtr MakeAtom(std::string keyword, mcalc::VarId var);
PlanNodePtr MakePreCountAtom(std::string keyword, std::string count_column);
PlanNodePtr MakeJoin(PlanNodePtr left, PlanNodePtr right,
                     std::vector<mcalc::PredicateCall> residual = {});
PlanNodePtr MakeOuterUnion(std::vector<PlanNodePtr> children);
PlanNodePtr MakeSelect(PlanNodePtr child,
                       std::vector<mcalc::PredicateCall> predicates);
PlanNodePtr MakeProject(PlanNodePtr child, std::vector<ProjectItem> items);
PlanNodePtr MakeAntiJoin(PlanNodePtr left, PlanNodePtr right);
PlanNodePtr MakeGroup(PlanNodePtr child, GroupSpec spec);
PlanNodePtr MakeAltElim(PlanNodePtr child);
PlanNodePtr MakeSort(PlanNodePtr child);

// Resolves keyword terms against the index, computes every node's output
// schema bottom-up, and validates column references (π sources, γ inputs,
// predicate variables). Must be called before evaluation and re-called
// after rewrites.
Status ResolvePlan(PlanNode* root, const index::InvertedIndex& index);

// Multi-line indented plan rendering (for EXPLAIN output and tests).
std::string PlanToString(const PlanNode& root);

}  // namespace graft::ma

#endif  // GRAFT_MA_PLAN_H_
