#include "ma/plan.h"

#include <set>

namespace graft::ma {

std::string OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAtom: return "A";
    case OpKind::kPreCountAtom: return "CA";
    case OpKind::kJoin: return "⋈";
    case OpKind::kOuterUnion: return "⊎";
    case OpKind::kSelect: return "σ";
    case OpKind::kProject: return "π";
    case OpKind::kAntiJoin: return "▷";
    case OpKind::kGroup: return "γ";
    case OpKind::kAltElim: return "δA";
    case OpKind::kSort: return "τ";
  }
  return "?";
}

PlanNodePtr PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->keyword = keyword;
  copy->var = var;
  copy->term = term;
  copy->output_column = output_column;
  copy->predicates = predicates;
  copy->items = items;  // ProjectItem copy clones exprs
  copy->group = group;
  copy->schema = schema;
  copy->children.reserve(children.size());
  for (const PlanNodePtr& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

PlanNodePtr MakeAtom(std::string keyword, mcalc::VarId var) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kAtom;
  node->keyword = std::move(keyword);
  node->var = var;
  node->output_column = "p" + std::to_string(var);
  return node;
}

PlanNodePtr MakePreCountAtom(std::string keyword, std::string count_column) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kPreCountAtom;
  node->keyword = std::move(keyword);
  node->output_column = std::move(count_column);
  return node;
}

PlanNodePtr MakeJoin(PlanNodePtr left, PlanNodePtr right,
                     std::vector<mcalc::PredicateCall> residual) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->predicates = std::move(residual);
  return node;
}

PlanNodePtr MakeOuterUnion(std::vector<PlanNodePtr> children) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kOuterUnion;
  node->children = std::move(children);
  return node;
}

PlanNodePtr MakeSelect(PlanNodePtr child,
                       std::vector<mcalc::PredicateCall> predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kSelect;
  node->children.push_back(std::move(child));
  node->predicates = std::move(predicates);
  return node;
}

PlanNodePtr MakeProject(PlanNodePtr child, std::vector<ProjectItem> items) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kProject;
  node->children.push_back(std::move(child));
  node->items = std::move(items);
  return node;
}

PlanNodePtr MakeAntiJoin(PlanNodePtr left, PlanNodePtr right) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kAntiJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

PlanNodePtr MakeGroup(PlanNodePtr child, GroupSpec spec) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kGroup;
  node->children.push_back(std::move(child));
  node->group = std::move(spec);
  return node;
}

PlanNodePtr MakeAltElim(PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kAltElim;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeSort(PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kSort;
  node->children.push_back(std::move(child));
  return node;
}

namespace {

// Validates that each predicate's variables resolve to position columns.
Status CheckPredicates(const std::vector<mcalc::PredicateCall>& predicates,
                       const Schema& schema, const std::string& where) {
  for (const mcalc::PredicateCall& call : predicates) {
    GRAFT_RETURN_IF_ERROR(mcalc::ValidatePredicateCall(call));
    for (const mcalc::VarId var : call.vars) {
      if (schema.FindVar(var) < 0) {
        return Status::InvalidArgument(
            "predicate " + call.name + " references unbound variable p" +
            std::to_string(var) + " in " + where);
      }
    }
  }
  return Status::Ok();
}

Status ResolveNode(PlanNode* node, const index::InvertedIndex& index) {
  for (const PlanNodePtr& child : node->children) {
    GRAFT_RETURN_IF_ERROR(ResolveNode(child.get(), index));
  }
  node->schema.columns.clear();

  switch (node->kind) {
    case OpKind::kAtom: {
      node->term = index.LookupTerm(node->keyword);
      // Unknown keywords are legal (empty scan); keep kInvalidTerm.
      node->schema.columns.push_back(Column::Pos(
          node->output_column, node->var, node->term, node->keyword));
      return Status::Ok();
    }
    case OpKind::kPreCountAtom: {
      node->term = index.LookupTerm(node->keyword);
      node->schema.columns.push_back(
          Column::CountCol(node->output_column, node->term, node->keyword));
      return Status::Ok();
    }
    case OpKind::kJoin: {
      if (node->children.size() != 2) {
        return Status::InvalidArgument("join must have two children");
      }
      const Schema& left = node->children[0]->schema;
      const Schema& right = node->children[1]->schema;
      for (const Column& c : left.columns) {
        node->schema.columns.push_back(c);
      }
      for (const Column& c : right.columns) {
        if (node->schema.Find(c.name) >= 0) {
          return Status::InvalidArgument("duplicate column across join: " +
                                         c.name);
        }
        node->schema.columns.push_back(c);
      }
      return CheckPredicates(node->predicates, node->schema, "join");
    }
    case OpKind::kOuterUnion: {
      if (node->children.size() < 2) {
        return Status::InvalidArgument("union needs two or more children");
      }
      // Output schema: union of children's columns. Position columns are
      // identified by variable; all other kinds must appear in every child.
      for (const PlanNodePtr& child : node->children) {
        for (const Column& c : child->schema.columns) {
          if (c.kind == Column::Kind::kPos) {
            if (node->schema.FindVar(c.var) < 0) {
              node->schema.columns.push_back(c);
            }
          } else if (node->schema.Find(c.name) < 0) {
            node->schema.columns.push_back(c);
          }
        }
      }
      // Position columns pad with ∅ and count columns with 0 (both encode
      // "inconsequential"); score columns cannot be padded without calling
      // the scheme, so they must appear in every child.
      for (const PlanNodePtr& child : node->children) {
        for (const Column& c : node->schema.columns) {
          if (c.kind == Column::Kind::kScore &&
              child->schema.Find(c.name) < 0) {
            return Status::InvalidArgument(
                "outer union cannot pad score column: " + c.name);
          }
        }
      }
      return Status::Ok();
    }
    case OpKind::kSelect: {
      if (node->children.size() != 1) {
        return Status::InvalidArgument("select must have one child");
      }
      node->schema = node->children[0]->schema;
      return CheckPredicates(node->predicates, node->schema, "select");
    }
    case OpKind::kProject: {
      if (node->children.size() != 1) {
        return Status::InvalidArgument("project must have one child");
      }
      const Schema& input = node->children[0]->schema;
      std::set<std::string> names;
      for (const ProjectItem& item : node->items) {
        if (!names.insert(item.name).second) {
          return Status::InvalidArgument("duplicate projection output: " +
                                         item.name);
        }
        if (!item.source.empty()) {
          const int idx = input.Find(item.source);
          if (idx < 0) {
            return Status::InvalidArgument("projection of unknown column: " +
                                           item.source);
          }
          Column c = input.columns[idx];
          c.name = item.name;
          node->schema.columns.push_back(c);
        } else if (!item.count_product.empty()) {
          for (const std::string& source : item.count_product) {
            const int idx = input.Find(source);
            if (idx < 0 || input.columns[idx].kind != Column::Kind::kCount) {
              return Status::InvalidArgument(
                  "count product over non-count column: " + source);
            }
          }
          node->schema.columns.push_back(
              Column::CountCol(item.name, kInvalidTerm, ""));
        } else {
          if (item.expr == nullptr) {
            return Status::InvalidArgument(
                "projection item needs a source or an expression");
          }
          // Compilation validates the expression's column references.
          auto compiled = CompiledScoreExpr::Compile(*item.expr, input);
          if (!compiled.ok()) return compiled.status();
          node->schema.columns.push_back(Column::Score(item.name));
        }
      }
      return Status::Ok();
    }
    case OpKind::kAntiJoin: {
      if (node->children.size() != 2) {
        return Status::InvalidArgument("anti-join must have two children");
      }
      node->schema = node->children[0]->schema;
      return Status::Ok();
    }
    case OpKind::kGroup: {
      if (node->children.size() != 1) {
        return Status::InvalidArgument("group must have one child");
      }
      const Schema& input = node->children[0]->schema;
      for (const std::string& key : node->group.keys) {
        const int idx = input.Find(key);
        if (idx < 0) {
          return Status::InvalidArgument("group key not found: " + key);
        }
        node->schema.columns.push_back(input.columns[idx]);
      }
      for (const GroupSpec::ScoreAgg& agg : node->group.score_aggs) {
        const int idx = input.Find(agg.input);
        if (idx < 0 || input.columns[idx].kind != Column::Kind::kScore) {
          return Status::InvalidArgument("⊕ aggregation of non-score "
                                         "column: " +
                                         agg.input);
        }
        if (!agg.scale_count.empty()) {
          const int cidx = input.Find(agg.scale_count);
          if (cidx < 0 || input.columns[cidx].kind != Column::Kind::kCount) {
            return Status::InvalidArgument("⊗ weight is not a count "
                                           "column: " +
                                           agg.scale_count);
          }
        }
        node->schema.columns.push_back(Column::Score(agg.output));
      }
      if (!node->group.count_output.empty()) {
        TermId term = kInvalidTerm;
        std::string keyword;
        if (!node->group.count_input.empty()) {
          const int cidx = input.Find(node->group.count_input);
          if (cidx < 0 || input.columns[cidx].kind != Column::Kind::kCount) {
            return Status::InvalidArgument("SUM over non-count column: " +
                                           node->group.count_input);
          }
          term = input.columns[cidx].term;
          keyword = input.columns[cidx].keyword;
        } else if (!node->group.count_keyword.empty()) {
          keyword = node->group.count_keyword;
          term = index.LookupTerm(keyword);
        }
        node->schema.columns.push_back(
            Column::CountCol(node->group.count_output, term, keyword));
      }
      return Status::Ok();
    }
    case OpKind::kAltElim: {
      if (node->children.size() != 1) {
        return Status::InvalidArgument("alt-elim must have one child");
      }
      node->schema = node->children[0]->schema;
      return Status::Ok();
    }
    case OpKind::kSort: {
      if (node->children.size() != 1) {
        return Status::InvalidArgument("sort must have one child");
      }
      node->schema = node->children[0]->schema;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown plan node kind");
}

void PrintNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(OpKindName(node.kind));
  switch (node.kind) {
    case OpKind::kAtom:
      out->append("('" + node.keyword + "', d, " + node.output_column + ")");
      break;
    case OpKind::kPreCountAtom:
      out->append("('" + node.keyword + "', d, " + node.output_column + ")");
      break;
    case OpKind::kSelect:
    case OpKind::kJoin: {
      if (!node.predicates.empty()) {
        out->append("[");
        for (size_t i = 0; i < node.predicates.size(); ++i) {
          if (i > 0) out->append(" ∧ ");
          out->append(node.predicates[i].ToString());
        }
        out->append("]");
      }
      break;
    }
    case OpKind::kProject: {
      out->append("{");
      for (size_t i = 0; i < node.items.size(); ++i) {
        if (i > 0) out->append(", ");
        const ProjectItem& item = node.items[i];
        if (!item.source.empty()) {
          out->append(item.name);
        } else if (!item.count_product.empty()) {
          out->append(item.name + ":");
          for (size_t j = 0; j < item.count_product.size(); ++j) {
            if (j > 0) out->append("×");
            out->append(item.count_product[j]);
          }
        } else {
          out->append(item.name + ":" + (item.finalize ? "ω(" : "") +
                      item.expr->ToString() + (item.finalize ? ")" : ""));
        }
      }
      out->append("}");
      break;
    }
    case OpKind::kGroup: {
      out->append("{d");
      for (const std::string& key : node.group.keys) {
        out->append("," + key);
      }
      out->append(" | ");
      bool first = true;
      for (const GroupSpec::ScoreAgg& agg : node.group.score_aggs) {
        if (!first) out->append(", ");
        first = false;
        out->append(agg.output + ":⊕(" + agg.input);
        if (!agg.scale_count.empty()) {
          out->append("⊗" + agg.scale_count);
        }
        out->append(")");
      }
      if (!node.group.count_output.empty()) {
        if (!first) out->append(", ");
        out->append(node.group.count_output + ":" +
                    (node.group.count_input.empty()
                         ? "COUNT(*)"
                         : "SUM(" + node.group.count_input + ")"));
      }
      out->append("}");
      break;
    }
    default:
      break;
  }
  out->append("  -> " + node.schema.ToString());
  out->append("\n");
  for (const PlanNodePtr& child : node.children) {
    PrintNode(*child, depth + 1, out);
  }
}

}  // namespace

Status ResolvePlan(PlanNode* root, const index::InvertedIndex& index) {
  return ResolveNode(root, index);
}

std::string PlanToString(const PlanNode& root) {
  std::string out;
  PrintNode(root, 0, &out);
  return out;
}

}  // namespace graft::ma
