// Plan-node output schemas. The document column is implicit; every other
// column is named and typed. Position columns remember which query variable
// and keyword they materialize, which is what lets hosted α calls recover
// the paper's "column" argument (the keyword's statistics).

#ifndef GRAFT_MA_SCHEMA_H_
#define GRAFT_MA_SCHEMA_H_

#include <string>
#include <vector>

#include "index/types.h"
#include "mcalc/predicates.h"

namespace graft::ma {

struct Column {
  enum class Kind { kPos, kScore, kCount };

  Kind kind = Kind::kPos;
  std::string name;

  // kPos: the bound query variable and its keyword.
  mcalc::VarId var = -1;
  // kPos and kCount: the keyword whose statistics α consults.
  TermId term = kInvalidTerm;
  std::string keyword;

  static Column Pos(std::string name, mcalc::VarId var, TermId term,
                    std::string keyword) {
    Column c;
    c.kind = Kind::kPos;
    c.name = std::move(name);
    c.var = var;
    c.term = term;
    c.keyword = std::move(keyword);
    return c;
  }
  static Column Score(std::string name) {
    Column c;
    c.kind = Kind::kScore;
    c.name = std::move(name);
    return c;
  }
  static Column CountCol(std::string name, TermId term, std::string keyword) {
    Column c;
    c.kind = Kind::kCount;
    c.name = std::move(name);
    c.term = term;
    c.keyword = std::move(keyword);
    return c;
  }
};

struct Schema {
  std::vector<Column> columns;

  // Index of the named column, or -1.
  int Find(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  // Index of the position column bound to `var`, or -1.
  int FindVar(mcalc::VarId var) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].kind == Column::Kind::kPos && columns[i].var == var) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  std::string ToString() const {
    std::string out = "(d";
    for (const Column& c : columns) {
      out += ", " + c.name;
    }
    out += ")";
    return out;
  }
};

}  // namespace graft::ma

#endif  // GRAFT_MA_SCHEMA_H_
