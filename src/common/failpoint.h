// Failpoints: named fault-injection hooks compiled into hot spots of the
// I/O and serving layers, in the style of the Rust `fail` crate and the
// failpoint facilities in TiKV / YTsaurus.
//
// A call site defines a failpoint once at namespace scope and checks it
// where the fault should strike:
//
//   GRAFT_DEFINE_FAILPOINT(g_fp_before_rename, "index_io.save.before_rename");
//
//   Status SaveIndex(...) {
//     ...
//     GRAFT_FAILPOINT(g_fp_before_rename);   // may return an injected error
//     rename(tmp, path);
//   }
//
// When a failpoint is inactive (the overwhelmingly common case) a check is
// one relaxed atomic load and a predicted-not-taken branch. Tests (or an
// operator, via the GRAFT_FAILPOINTS environment variable) activate
// failpoints by name with one of four actions:
//
//   error     the check returns a configured Status, as if the underlying
//             operation failed;
//   delay     the check sleeps, then proceeds (latency injection);
//   abort     the process terminates on the spot via _Exit — no stdio
//             flush, no atexit handlers — simulating a crash / SIGKILL;
//   truncate  (write-path checks only) the file being written is flushed
//             and chopped by N bytes, then the check returns IOError —
//             simulating a torn write that the caller notices.
//
// Spec grammar, used by ActivateSpec / ActivateFromEnv:
//
//   spec    := name '=' action [ '@' N ]       (fire from the Nth hit on)
//   action  := off | abort | error | error(CodeName) | delay(ms)
//            | truncate(bytes)
//   env     := spec (';' spec)*                e.g.
//              GRAFT_FAILPOINTS='index_io.save.before_sync=error(IOError)'
//
// Compile gating: sites are emitted only when GRAFT_FAILPOINTS_ENABLED is
// defined (CMake option GRAFT_FAILPOINTS, default ON). With the option
// OFF the macros expand to nothing, the library contains no sites, and
// behavior is byte-identical to a build that never heard of failpoints;
// the registry still links so activation attempts fail with a clear
// NotFound instead of an undefined symbol.

#ifndef GRAFT_COMMON_FAILPOINT_H_
#define GRAFT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace graft::common {

enum class FailpointAction {
  kError,          // Check() returns the configured Status
  kDelay,          // Check() sleeps delay_ms, then proceeds
  kAbort,          // Check() terminates the process immediately
  kTruncateWrite,  // CheckWrite() truncates the file, then returns IOError
};

struct FailpointConfig {
  FailpointAction action = FailpointAction::kError;
  StatusCode error_code = StatusCode::kInternal;
  std::string message;          // appended to the injected error
  uint64_t delay_ms = 0;        // kDelay
  uint64_t truncate_bytes = 0;  // kTruncateWrite: bytes chopped off the tail
  // 1-based hit index on which the failpoint starts firing; hits before it
  // pass through untouched (e.g. 3 = survive two evaluations, fail from
  // the third on). Lets chaos tests crash mid-loop, not just at entry.
  uint64_t trigger_on_hit = 1;
  // 0 = keep firing forever once triggered; N = fire at most N times, then
  // pass through again.
  uint64_t max_fires = 0;
};

class FailpointRegistry;

// One named fault-injection site. Define via GRAFT_DEFINE_FAILPOINT at
// namespace scope (registration happens during static initialization, so
// the registry can enumerate every site before any code runs).
class Failpoint {
 public:
  explicit Failpoint(const char* name);

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const char* name() const { return name_; }

  // Evaluates the failpoint: Ok to proceed, non-ok for an injected error.
  // kAbort configs terminate the process inside this call.
  Status Check() { return armed() ? Fire(nullptr) : Status::Ok(); }

  // Write-path variant: `file` is the stream being produced. kAbort
  // flushes it first (so the injected crash tears the file at exactly this
  // point rather than at the last stdio flush); kTruncateWrite flushes,
  // chops `truncate_bytes` off, and returns IOError.
  Status CheckWrite(std::FILE* file) {
    return armed() ? Fire(file) : Status::Ok();
  }

 private:
  friend class FailpointRegistry;

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  Status Fire(std::FILE* file);

  const char* name_;
  std::atomic<bool> armed_{false};
};

class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  // Arms `name` with `config`. NotFound if no such site is compiled in.
  Status Activate(std::string_view name, FailpointConfig config);

  // Parses and applies one spec (grammar above). "name=off" deactivates.
  Status ActivateSpec(std::string_view spec);

  // Applies every ';'-separated spec in the environment variable; an
  // unset/empty variable is Ok (the common production case).
  Status ActivateFromEnv(const char* env_var = "GRAFT_FAILPOINTS");

  void Deactivate(std::string_view name);
  void DeactivateAll();

  // Every compiled-in site, sorted by name. The chaos harness iterates
  // this to crash a writer at each registered point in turn.
  std::vector<std::string> RegisteredNames() const;
  bool IsRegistered(std::string_view name) const;
  bool IsActive(std::string_view name) const;

  // Total evaluations of `name` while armed (diagnostic for tests).
  uint64_t HitCount(std::string_view name) const;

 private:
  friend class Failpoint;
  FailpointRegistry() = default;

  void Register(Failpoint* site);
  Status Fire(Failpoint* site, std::FILE* file);
};

}  // namespace graft::common

#ifdef GRAFT_FAILPOINTS_ENABLED
#define GRAFT_DEFINE_FAILPOINT(var, name_literal) \
  ::graft::common::Failpoint var { name_literal }
#define GRAFT_FAILPOINT(var)                         \
  do {                                               \
    ::graft::Status graft_fp_status_ = (var).Check(); \
    if (!graft_fp_status_.ok()) return graft_fp_status_; \
  } while (false)
#define GRAFT_FAILPOINT_WRITE(var, file)                        \
  do {                                                          \
    ::graft::Status graft_fp_status_ = (var).CheckWrite(file);  \
    if (!graft_fp_status_.ok()) return graft_fp_status_;        \
  } while (false)
#else
#define GRAFT_DEFINE_FAILPOINT(var, name_literal) \
  static_assert(sizeof(name_literal) > 1, "failpoint name required")
#define GRAFT_FAILPOINT(var) \
  do {                       \
  } while (false)
#define GRAFT_FAILPOINT_WRITE(var, file) \
  do {                                   \
  } while (false)
#endif  // GRAFT_FAILPOINTS_ENABLED

#endif  // GRAFT_COMMON_FAILPOINT_H_
