// Status and StatusOr: exception-free error propagation for the GRAFT
// library, in the style of absl::Status / rocksdb::Status.
//
// Library code never throws; every fallible operation returns a Status or a
// StatusOr<T>. Ok statuses are cheap (no allocation beyond the message
// string, which is empty for Ok).

#ifndef GRAFT_COMMON_STATUS_H_
#define GRAFT_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace graft {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
  kIOError = 9,
  // Stored data failed an integrity check (checksum mismatch, impossible
  // structural invariant). Distinct from kDataLoss, which the I/O layer
  // reserves for truncation / short reads, so callers can report the
  // failure class (corrupt vs. torn vs. incompatible) without string
  // matching.
  kCorruption = 10,
  // Stored data carries a format version this build does not read.
  kVersionMismatch = 11,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Inverse of StatusCodeName ("DataLoss" -> kDataLoss); nullopt for names
// that match no code. Used by the failpoint spec parser.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

class Status {
 public:
  // Constructs an Ok status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// A union of a Status and a value of type T. Holds the value iff ok().
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  StatusOr(const T& value) : status_(), value_(value) {}          // NOLINT
  StatusOr(T&& value) : status_(), value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {          // NOLINT
    assert(!status_.ok() && "StatusOr constructed from Ok status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from Ok status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      // Accessing the value of a failed StatusOr is a programming error.
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if not ok.
#define GRAFT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::graft::Status graft_status_ = (expr);    \
    if (!graft_status_.ok()) {                 \
      return graft_status_;                    \
    }                                          \
  } while (false)

// Evaluates `rexpr` (a StatusOr<T> expression); on success assigns the value
// to `lhs`, otherwise returns the error status.
#define GRAFT_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  GRAFT_ASSIGN_OR_RETURN_IMPL_(                             \
      GRAFT_STATUS_CONCAT_(graft_statusor_, __LINE__), lhs, rexpr)

#define GRAFT_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) {                                    \
    return var.status();                              \
  }                                                   \
  lhs = std::move(var).value()

#define GRAFT_STATUS_CONCAT_(a, b) GRAFT_STATUS_CONCAT_IMPL_(a, b)
#define GRAFT_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace graft

#endif  // GRAFT_COMMON_STATUS_H_
