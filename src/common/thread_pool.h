// A fixed-size thread pool for intra- and inter-query parallelism.
//
// Design constraints (matching the rest of the library):
//   * no exceptions — tasks are plain std::function<void()> thunks, and
//     fallible work communicates through Status/StatusOr carried in a
//     Future<T> (set exactly once, taken exactly once);
//   * no work stealing and no dynamic resizing — a fixed worker count
//     keeps the concurrency model trivially auditable under TSan;
//   * the pool never owns query state: callers own all inputs/outputs and
//     block on futures or ParallelFor, so task lambdas may capture stack
//     references safely.
//
// ParallelFor is the primary entry point for segment fan-out: it runs
// fn(0..n-1) on the calling thread plus up to (max_workers - 1) pool
// workers, pulling indexes from a shared atomic counter, and returns only
// when every iteration has finished (the completion latch establishes the
// happens-before edge back to the caller).

#ifndef GRAFT_COMMON_THREAD_POOL_H_
#define GRAFT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace graft::common {

// Single-producer-per-value future: Set() exactly once, Take()/Wait() from
// one consumer. Cheap shared-state handle; copyable like std::shared_future.
template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<State>()) {}

  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  // Blocks until Set, then moves the value out. Call at most once.
  T Take() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
  };
  std::shared_ptr<State> state_;
};

// Countdown latch (C++20 std::latch shape, kept local so the pool has no
// dependency surprises). Wait() returns once the count reaches zero.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 → hardware concurrency, at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains nothing: queued tasks still pending at destruction are dropped;
  // running tasks finish. Callers that need results must have waited.
  ~ThreadPool();

  size_t size() const { return threads_.size(); }

  // Enqueues a task for any worker. Returns false (task dropped) only if
  // the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Submits fn and returns a future for its result. fn must not throw.
  // If the pool is shutting down, fn runs inline on the caller.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  Future<R> SubmitFuture(Fn fn) {
    Future<R> future;
    if (!Submit([future, fn]() mutable { future.Set(fn()); })) {
      future.Set(fn());
    }
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(i) for every i in [0, n) using the calling thread plus up to
// (max_workers - 1) pool workers (max_workers == 0 → pool size + 1), and
// blocks until all iterations complete. Iterations are claimed from a
// shared atomic counter, so uneven per-index costs self-balance. With a
// null pool, max_workers <= 1, or n <= 1 the loop runs inline.
void ParallelFor(ThreadPool* pool, size_t max_workers, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace graft::common

#endif  // GRAFT_COMMON_THREAD_POOL_H_
