// Deterministic pseudo-random number generation for corpus synthesis,
// property-based tests, and benchmarks. All randomness in the repository
// flows through Rng so runs are reproducible from a seed.

#ifndef GRAFT_COMMON_RANDOM_H_
#define GRAFT_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace graft {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and good enough for
// workload synthesis; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextUint64() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Samples ranks from a Zipf(s) distribution over [0, n) using the rejection
// method of Jason Crease / standard inverse-CDF approximation. Ranks near 0
// are the most frequent, mirroring natural-language term frequencies.
class ZipfSampler {
 public:
  // `skew` is the Zipf exponent (typical natural language: ~1.0-1.2).
  ZipfSampler(uint64_t n, double skew, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double skew_;
  Rng rng_;
  // Precomputed cumulative mass for small n; sampled by binary search.
  std::vector<double> cdf_;
};

}  // namespace graft

#endif  // GRAFT_COMMON_RANDOM_H_
