#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace graft {

ZipfSampler::ZipfSampler(uint64_t n, double skew, uint64_t seed)
    : n_(n), skew_(skew), rng_(seed) {
  // Precompute the CDF. Vocabulary sizes in this repository are at most a
  // few hundred thousand, so the O(n) table is fine and exact.
  cdf_.reserve(n_);
  double total = 0.0;
  for (uint64_t rank = 0; rank < n_; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), skew_);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

uint64_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return n_ - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace graft
