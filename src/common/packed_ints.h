// Fixed-width bit packing for 32-bit integers — the codec beneath the v5
// posting blocks (docs/index-format.md).
//
// A run of n values is stored at a single bit width b in ceil(n*b/8)
// bytes, little-endian within a conceptual bit stream: value i occupies
// bits [i*b, (i+1)*b). b == 0 is the degenerate-but-common case (every
// value is 0: consecutive doc ids, tf == 1 blocks) and stores nothing.
//
// The unpack loop is scalar but SIMD-friendly: one 64-bit accumulator,
// no per-value branches beyond the refill, and independent stores — the
// compiler unrolls and vectorizes the fixed-width inner loop without any
// intrinsics, which keeps the codec portable across the CI targets.
// Throughput is measured by bench_postings_v5 (decode side of the cold
// QPS numbers).

#ifndef GRAFT_COMMON_PACKED_INTS_H_
#define GRAFT_COMMON_PACKED_INTS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace graft::common {

// Bytes needed to store n values at `bits` width (bits in [0, 32]).
constexpr size_t PackedBytes(size_t n, unsigned bits) {
  return (n * bits + 7) / 8;
}

// Smallest width that can represent `max_value` (0 for 0, 32 for ~0u).
constexpr unsigned BitsFor(uint32_t max_value) {
  unsigned bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

// Packs in[0..n) at `bits` width into out (PackedBytes(n, bits) bytes,
// zeroed by the call). Every value must fit in `bits` bits.
void PackInts(const uint32_t* in, size_t n, unsigned bits, uint8_t* out);

// Unpacks n values of `bits` width from `in` into out[0..n).
inline void UnpackInts(const uint8_t* in, size_t n, unsigned bits,
                       uint32_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return;
  }
  const uint64_t mask =
      bits >= 32 ? ~uint64_t{0} >> 32 : (uint64_t{1} << bits) - 1;
  uint64_t acc = 0;
  unsigned have = 0;
  for (size_t i = 0; i < n; ++i) {
    while (have < bits) {
      acc |= uint64_t{*in++} << have;
      have += 8;
    }
    out[i] = static_cast<uint32_t>(acc & mask);
    acc >>= bits;
    have -= bits;
  }
}

}  // namespace graft::common

#endif  // GRAFT_COMMON_PACKED_INTS_H_
