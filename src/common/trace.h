// Low-overhead query tracing: spans + a process-global ring buffer.
//
// Two layers, mirroring how failpoints are built (compiled in always,
// gated by one relaxed atomic when off):
//
//   * QueryTrace — a per-query span collection. Callers that want a trace
//     (EXPLAIN ANALYZE, ?explain=1, tests) hand one to the engine via
//     SearchOptions::trace; the engine opens spans for parse →
//     canonicalize/optimize (one span per attempted rewrite, carrying the
//     gate verdict) → execute → rank → merge. Recording is mutex-guarded
//     because segmented execution closes spans from pool workers.
//
//   * Tracer — the process-global sink. When enabled (Tracer::Global()
//     .Enable(capacity)), the engine traces every query into a fixed-size
//     ring of TraceRecords (newest overwrite oldest), which the slow-query
//     log and post-hoc debugging read. When disabled — the default — the
//     only cost on the query path is one relaxed atomic load, measured by
//     bench_parallel_throughput's trace-overhead guard (<2% QPS).
//
// Span timestamps come from the monotonic clock; durations are exact, wall
// times are not reconstructable (by design — nothing here needs them).

#ifndef GRAFT_COMMON_TRACE_H_
#define GRAFT_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace graft::common {

// Nanoseconds on the monotonic clock (CLOCK_MONOTONIC).
uint64_t MonotonicNanos();

struct TraceSpan {
  std::string name;
  std::string detail;    // freeform annotation (gate verdicts, counts, ...)
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;   // == start_ns for point events
  uint32_t depth = 0;    // nesting depth within the opening thread

  uint64_t DurationNanos() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

// Span collection for one query. Thread-safe: pool workers may open/close
// spans concurrently with the coordinating thread. Nesting depth is
// tracked per opening thread, so concurrent segment spans render as
// siblings, not as accidental children of each other.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(QueryTrace&& other) noexcept;
  QueryTrace& operator=(QueryTrace&& other) noexcept;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  // Opens a span and returns its id (stable across later Begin/End calls).
  size_t BeginSpan(std::string_view name, std::string_view detail = {});

  // Closes the span; detail (if non-empty) replaces the span's detail.
  void EndSpan(size_t id, std::string_view detail = {});

  // Records a zero-duration span at the current nesting depth.
  void AddEvent(std::string_view name, std::string_view detail = {});

  std::vector<TraceSpan> spans() const;
  size_t span_count() const;

  // Indented rendering, one span per line:
  //   [   123.4us] execute  (segments=4)
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  // Per-thread stack of open span ids (LIFO per thread via ScopedSpan).
  std::unordered_map<std::thread::id, std::vector<size_t>> open_;
};

// RAII span. A null trace makes every operation a no-op, so call sites
// never branch on "is tracing on".
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string_view name,
             std::string_view detail = {})
      : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->BeginSpan(name, detail);
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Closes early (idempotent); detail replaces the span's annotation.
  void End(std::string_view detail = {}) {
    if (trace_ != nullptr && !ended_) {
      trace_->EndSpan(id_, detail);
      ended_ = true;
    }
  }

 private:
  QueryTrace* trace_;
  size_t id_ = 0;
  bool ended_ = false;
};

// One completed query's trace in the global ring.
struct TraceRecord {
  uint64_t sequence = 0;  // monotonically increasing admission number
  std::string label;      // typically the MCalc query text
  uint64_t total_nanos = 0;
  std::vector<TraceSpan> spans;
};

// Process-global trace sink: fixed-capacity ring buffer of the most recent
// query traces. Disabled by default; Enable/Disable are rare control-plane
// operations, enabled() is the hot-path check (one relaxed load).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Turns recording on with a ring of `capacity` records (existing records
  // are cleared). Thread-safe.
  void Enable(size_t capacity = kDefaultCapacity);

  // Turns recording off and clears the ring.
  void Disable();

  // Appends one completed trace; overwrites the oldest record once the
  // ring is full. No-op while disabled.
  void Record(std::string label, const QueryTrace& trace);

  // Records currently held, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  // Total records ever accepted since the last Enable (>= ring size once
  // wrapped; wraparound tests key off this).
  uint64_t records_accepted() const;

  size_t capacity() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;  // ring_[sequence % capacity_]
  size_t capacity_ = 0;
  uint64_t next_sequence_ = 0;
};

}  // namespace graft::common

#endif  // GRAFT_COMMON_TRACE_H_
