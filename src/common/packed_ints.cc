#include "common/packed_ints.h"

#include <cassert>

namespace graft::common {

void PackInts(const uint32_t* in, size_t n, unsigned bits, uint8_t* out) {
  if (bits == 0) {
    return;  // nothing stored; every value decodes as 0
  }
  assert(bits <= 32);
  uint64_t acc = 0;
  unsigned have = 0;
  uint8_t* p = out;
  for (size_t i = 0; i < n; ++i) {
    assert(bits == 32 || (in[i] >> bits) == 0);
    acc |= uint64_t{in[i]} << have;
    have += bits;
    while (have >= 8) {
      *p++ = static_cast<uint8_t>(acc & 0xff);
      acc >>= 8;
      have -= 8;
    }
  }
  if (have > 0) {
    *p++ = static_cast<uint8_t>(acc & 0xff);
  }
  assert(static_cast<size_t>(p - out) == PackedBytes(n, bits));
}

}  // namespace graft::common
