// Read-only memory-mapped file region — the storage substrate of the v5
// mmap load path (docs/index-format.md).
//
// Open() maps the whole file MAP_PRIVATE/PROT_READ; data() is valid until
// destruction. On filesystems where mmap fails (some network mounts,
// /proc-style pseudo-files), Open falls back to reading the file into an
// owned heap buffer, so callers get the same zero-copy pointer contract
// either way; mapped() says which mode was taken. The region is movable
// and is typically held by shared_ptr so decoded-block cache entries and
// cursors can outlive the loading scope safely.

#ifndef GRAFT_COMMON_MMAP_REGION_H_
#define GRAFT_COMMON_MMAP_REGION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace graft::common {

class MmapRegion {
 public:
  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;
  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;

  // Maps `path` read-only (heap-buffer fallback if mmap is unavailable).
  // An empty file yields an ok region with size() == 0.
  static StatusOr<MmapRegion> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  // True when the bytes come from mmap (false: heap fallback).
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;
};

}  // namespace graft::common

#endif  // GRAFT_COMMON_MMAP_REGION_H_
