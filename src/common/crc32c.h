// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum the index
// persistence layer stamps on every on-disk section. Software
// slicing-by-8 implementation (~1 byte/cycle class throughput), no
// hardware intrinsics, so results are identical on every platform.
//
// Conventions match zlib's crc32 API: initial value 0, final XOR applied,
// and the streaming form takes the finalized CRC of the prefix:
//
//   uint32_t crc = Crc32c(a, na);             // one-shot
//   crc = Crc32cExtend(crc, b, nb);           // == Crc32c(a+b)
//
// Known-answer: Crc32c("123456789") == 0xE3069283.

#ifndef GRAFT_COMMON_CRC32C_H_
#define GRAFT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace graft::common {

// CRC32C of the empty string is 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace graft::common

#endif  // GRAFT_COMMON_CRC32C_H_
