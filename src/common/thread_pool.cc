#include "common/thread_pool.h"

#include <algorithm>

namespace graft::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return false;  // shutting down; the task is dropped by contract
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t max_workers, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  size_t workers = max_workers == 0
                       ? (pool == nullptr ? 1 : pool->size() + 1)
                       : max_workers;
  workers = std::min(workers, n);
  if (pool == nullptr || workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Shared claim counter + completion latch. The caller is one of the
  // runners, so at most (workers - 1) pool slots are consumed and the
  // loop makes progress even on a saturated pool.
  std::atomic<size_t> next{0};
  const size_t helpers = workers - 1;
  Latch done(helpers);
  const auto runner = [&next, n, &fn] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  for (size_t h = 0; h < helpers; ++h) {
    const bool queued = pool->Submit([&runner, &done] {
      runner();
      done.CountDown();
    });
    if (!queued) {
      done.CountDown();  // pool shutting down: the caller picks up the work
    }
  }
  runner();
  done.Wait();
}

}  // namespace graft::common
