#include "common/mmap_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

namespace graft::common {

MmapRegion::~MmapRegion() { Release(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapRegion::Release() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

StatusOr<MmapRegion> MmapRegion::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for mmap: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + path);
  }
  MmapRegion region;
  region.size_ = static_cast<size_t>(st.st_size);
  if (region.size_ == 0) {
    ::close(fd);
    return region;
  }
  void* addr = ::mmap(nullptr, region.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr != MAP_FAILED) {
    region.data_ = static_cast<const uint8_t*>(addr);
    region.mapped_ = true;
    ::close(fd);
    return region;
  }
  // Heap fallback: same pointer contract, just not demand-paged.
  region.fallback_.resize(region.size_);
  size_t done = 0;
  while (done < region.size_) {
    const ssize_t got = ::read(fd, region.fallback_.data() + done,
                               region.size_ - done);
    if (got < 0) {
      ::close(fd);
      return Status::IOError("read failed during mmap fallback: " + path);
    }
    if (got == 0) {
      ::close(fd);
      return Status::DataLoss("file shrank during mmap fallback: " + path);
    }
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  region.data_ = region.fallback_.data();
  return region;
}

}  // namespace graft::common
