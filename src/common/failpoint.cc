#include "common/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace graft::common {

namespace {

// Exit code a kAbort failpoint terminates with (the conventional code for
// SIGABRT deaths); the fork/kill chaos harness asserts on it to prove the
// injected crash actually fired.
constexpr int kAbortExitCode = 134;

StatusOr<uint64_t> ParseU64(std::string_view text, std::string_view what) {
  if (text.empty()) {
    return Status::InvalidArgument("failpoint spec: empty " +
                                   std::string(what));
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("failpoint spec: bad " +
                                     std::string(what) + " '" +
                                     std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// action := abort | error | error(CodeName) | delay(ms) | truncate(bytes)
StatusOr<FailpointConfig> ParseAction(std::string_view text) {
  std::string_view head = text;
  std::string_view arg;
  const size_t paren = text.find('(');
  if (paren != std::string_view::npos) {
    if (text.back() != ')') {
      return Status::InvalidArgument("failpoint spec: unbalanced '(' in '" +
                                     std::string(text) + "'");
    }
    head = text.substr(0, paren);
    arg = text.substr(paren + 1, text.size() - paren - 2);
  }
  FailpointConfig config;
  if (head == "abort") {
    config.action = FailpointAction::kAbort;
  } else if (head == "error") {
    config.action = FailpointAction::kError;
    config.error_code = StatusCode::kInternal;
    if (!arg.empty()) {
      const std::optional<StatusCode> code = StatusCodeFromName(arg);
      if (!code.has_value() || *code == StatusCode::kOk) {
        return Status::InvalidArgument(
            "failpoint spec: unknown status code '" + std::string(arg) + "'");
      }
      config.error_code = *code;
    }
  } else if (head == "delay") {
    config.action = FailpointAction::kDelay;
    GRAFT_ASSIGN_OR_RETURN(config.delay_ms,
                           ParseU64(arg, "delay milliseconds"));
  } else if (head == "truncate") {
    config.action = FailpointAction::kTruncateWrite;
    GRAFT_ASSIGN_OR_RETURN(config.truncate_bytes,
                           ParseU64(arg, "truncate byte count"));
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action '" +
                                   std::string(text) + "'");
  }
  return config;
}

struct Entry {
  Failpoint* site = nullptr;
  bool active = false;
  FailpointConfig config;
  uint64_t hits = 0;   // evaluations while armed
  uint64_t fires = 0;  // evaluations that actually injected the fault
};

// The registry state outlives every static Failpoint (constructed on first
// use during their registration, intentionally leaked so static
// destruction order can never touch a destroyed map).
struct RegistryState {
  mutable std::mutex mu;
  std::map<std::string, Entry, std::less<>> entries;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

Entry* FindLocked(RegistryState& state, std::string_view name) {
  auto it = state.entries.find(name);
  return it == state.entries.end() ? nullptr : &it->second;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Failpoint::Failpoint(const char* name) : name_(name) {
  FailpointRegistry::Global().Register(this);
}

Status Failpoint::Fire(std::FILE* file) {
  return FailpointRegistry::Global().Fire(this, file);
}

void FailpointRegistry::Register(Failpoint* site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.entries[site->name()].site = site;
}

Status FailpointRegistry::Activate(std::string_view name,
                                   FailpointConfig config) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  Entry* entry = FindLocked(state, name);
  if (entry == nullptr || entry->site == nullptr) {
    return Status::NotFound(
        "no failpoint named '" + std::string(name) +
        "' is compiled in (build with -DGRAFT_FAILPOINTS=ON?)");
  }
  if (config.trigger_on_hit == 0) config.trigger_on_hit = 1;
  entry->active = true;
  entry->config = std::move(config);
  entry->hits = 0;
  entry->fires = 0;
  entry->site->armed_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status FailpointRegistry::ActivateSpec(std::string_view spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec must be name=action: '" +
                                   std::string(spec) + "'");
  }
  const std::string_view name = spec.substr(0, eq);
  std::string_view action = spec.substr(eq + 1);
  if (action == "off") {
    if (!IsRegistered(name)) {
      return Status::NotFound("no failpoint named '" + std::string(name) +
                              "'");
    }
    Deactivate(name);
    return Status::Ok();
  }
  uint64_t trigger_on_hit = 1;
  const size_t at = action.rfind('@');
  if (at != std::string_view::npos &&
      action.find(')', at) == std::string_view::npos) {
    GRAFT_ASSIGN_OR_RETURN(trigger_on_hit,
                           ParseU64(action.substr(at + 1), "hit index"));
    action = action.substr(0, at);
  }
  GRAFT_ASSIGN_OR_RETURN(FailpointConfig config, ParseAction(action));
  config.trigger_on_hit = trigger_on_hit;
  config.message = "injected by failpoint '" + std::string(name) + "'";
  return Activate(name, std::move(config));
}

Status FailpointRegistry::ActivateFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || value[0] == '\0') return Status::Ok();
  std::string_view rest = value;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string_view spec =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (spec.empty()) continue;
    GRAFT_RETURN_IF_ERROR(ActivateSpec(spec));
  }
  return Status::Ok();
}

void FailpointRegistry::Deactivate(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  Entry* entry = FindLocked(state, name);
  if (entry == nullptr) return;
  entry->active = false;
  if (entry->site != nullptr) {
    entry->site->armed_.store(false, std::memory_order_release);
  }
}

void FailpointRegistry::DeactivateAll() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, entry] : state.entries) {
    entry.active = false;
    if (entry.site != nullptr) {
      entry.site->armed_.store(false, std::memory_order_release);
    }
  }
}

std::vector<std::string> FailpointRegistry::RegisteredNames() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.entries.size());
  for (const auto& [name, entry] : state.entries) {
    if (entry.site != nullptr) names.push_back(name);
  }
  return names;  // std::map iteration order is already sorted
}

bool FailpointRegistry::IsRegistered(std::string_view name) const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const Entry* entry = FindLocked(state, name);
  return entry != nullptr && entry->site != nullptr;
}

bool FailpointRegistry::IsActive(std::string_view name) const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const Entry* entry = FindLocked(state, name);
  return entry != nullptr && entry->active;
}

uint64_t FailpointRegistry::HitCount(std::string_view name) const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const Entry* entry = FindLocked(state, name);
  return entry == nullptr ? 0 : entry->hits;
}

Status FailpointRegistry::Fire(Failpoint* site, std::FILE* file) {
  FailpointConfig config;
  {
    RegistryState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    Entry* entry = FindLocked(state, site->name());
    // The site was disarmed between the fast check and here: proceed.
    if (entry == nullptr || !entry->active) return Status::Ok();
    entry->hits += 1;
    if (entry->hits < entry->config.trigger_on_hit) return Status::Ok();
    if (entry->config.max_fires != 0 &&
        entry->fires >= entry->config.max_fires) {
      return Status::Ok();
    }
    entry->fires += 1;
    config = entry->config;
  }
  // Act outside the lock: delays must not serialize unrelated sites, and
  // the abort path does file I/O.
  switch (config.action) {
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(config.delay_ms));
      return Status::Ok();
    case FailpointAction::kError:
      return Status(config.error_code,
                    config.message.empty()
                        ? "injected by failpoint '" +
                              std::string(site->name()) + "'"
                        : config.message);
    case FailpointAction::kAbort:
      // Flush the stream under test so the crash tears the file at exactly
      // this point, then die without atexit handlers or stdio flush —
      // everything else the process buffered is lost, as in a real crash.
      if (file != nullptr) std::fflush(file);
      std::fprintf(stderr, "failpoint '%s': aborting process\n",
                   site->name());
      std::_Exit(kAbortExitCode);
    case FailpointAction::kTruncateWrite: {
      if (file == nullptr) {
        return Status::Internal("failpoint '" + std::string(site->name()) +
                                "': truncate action on a non-write site");
      }
      std::fflush(file);
      const long pos = std::ftell(file);
      if (pos >= 0) {
        const uint64_t size = static_cast<uint64_t>(pos);
        const uint64_t keep =
            size > config.truncate_bytes ? size - config.truncate_bytes : 0;
        if (::ftruncate(::fileno(file), static_cast<off_t>(keep)) != 0) {
          return Status::IOError("failpoint truncate: ftruncate failed");
        }
      }
      return Status::IOError(config.message.empty()
                                 ? "injected torn write at failpoint '" +
                                       std::string(site->name()) + "'"
                                 : config.message);
    }
  }
  return Status::Ok();
}

}  // namespace graft::common
