#include "common/status.h"

namespace graft {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kVersionMismatch:
      return "VersionMismatch";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kDataLoss, StatusCode::kIOError,
        StatusCode::kCorruption, StatusCode::kVersionMismatch}) {
    if (StatusCodeName(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace graft
