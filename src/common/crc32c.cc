#include "common/crc32c.h"

namespace graft::common {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // table[0] is the classic byte-at-a-time table; tables 1..7 fold 8 input
  // bytes per iteration (slicing-by-8).
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const Tables& tables = T();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;

  // Byte-align is unnecessary: we assemble the 8-byte block from
  // individual loads, so there are no unaligned-access or endianness
  // hazards — the fold below is written against little-endian byte order
  // explicitly.
  while (size >= 8) {
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    c = tables.t[7][lo & 0xFF] ^ tables.t[6][(lo >> 8) & 0xFF] ^
        tables.t[5][(lo >> 16) & 0xFF] ^ tables.t[4][lo >> 24] ^
        tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
        tables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    c = tables.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace graft::common
