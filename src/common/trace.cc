#include "common/trace.h"

#include <time.h>

#include <algorithm>
#include <cstdio>

namespace graft::common {

uint64_t MonotonicNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

QueryTrace::QueryTrace(QueryTrace&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  spans_ = std::move(other.spans_);
  open_ = std::move(other.open_);
}

QueryTrace& QueryTrace::operator=(QueryTrace&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    spans_ = std::move(other.spans_);
    open_ = std::move(other.open_);
  }
  return *this;
}

size_t QueryTrace::BeginSpan(std::string_view name, std::string_view detail) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t>& stack = open_[std::this_thread::get_id()];
  TraceSpan span;
  span.name = std::string(name);
  span.detail = std::string(detail);
  span.start_ns = now;
  span.end_ns = 0;
  span.depth = static_cast<uint32_t>(stack.size());
  const size_t id = spans_.size();
  spans_.push_back(std::move(span));
  stack.push_back(id);
  return id;
}

void QueryTrace::EndSpan(size_t id, std::string_view detail) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) {
    return;
  }
  TraceSpan& span = spans_[id];
  if (span.end_ns == 0) {
    span.end_ns = std::max(now, span.start_ns);
  }
  if (!detail.empty()) {
    span.detail = std::string(detail);
  }
  // Pop the id from its opening thread's stack (LIFO in practice; a
  // defensive erase keeps mismatched closes from corrupting depths).
  for (auto& [tid, stack] : open_) {
    const auto it = std::find(stack.begin(), stack.end(), id);
    if (it != stack.end()) {
      stack.erase(it, stack.end());
      break;
    }
  }
}

void QueryTrace::AddEvent(std::string_view name, std::string_view detail) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<size_t>& stack = open_[std::this_thread::get_id()];
  TraceSpan span;
  span.name = std::string(name);
  span.detail = std::string(detail);
  span.start_ns = now;
  span.end_ns = now;
  span.depth = static_cast<uint32_t>(stack.size());
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out = spans_;
  const uint64_t now = MonotonicNanos();
  for (TraceSpan& span : out) {
    if (span.end_ns == 0) {
      span.end_ns = std::max(now, span.start_ns);  // still open: clamp
    }
  }
  return out;
}

size_t QueryTrace::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string QueryTrace::ToText() const {
  const std::vector<TraceSpan> snapshot = spans();
  std::string out;
  char line[64];
  for (const TraceSpan& span : snapshot) {
    std::snprintf(line, sizeof(line), "[%10.1fus] ",
                  static_cast<double>(span.DurationNanos()) / 1000.0);
    out += line;
    out.append(2 * static_cast<size_t>(span.depth), ' ');
    out += span.name;
    if (!span.detail.empty()) {
      out += "  (";
      out += span.detail;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_sequence_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  ring_.clear();
  capacity_ = 0;
  next_sequence_ = 0;
}

void Tracer::Record(std::string label, const QueryTrace& trace) {
  if (!enabled()) {
    return;
  }
  TraceRecord record;
  record.label = std::move(label);
  record.spans = trace.spans();
  uint64_t min_start = UINT64_MAX;
  uint64_t max_end = 0;
  for (const TraceSpan& span : record.spans) {
    min_start = std::min(min_start, span.start_ns);
    max_end = std::max(max_end, span.end_ns);
  }
  record.total_nanos = max_end > min_start ? max_end - min_start : 0;

  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed) || capacity_ == 0) {
    return;  // raced with Disable
  }
  record.sequence = next_sequence_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[record.sequence % capacity_] = std::move(record);
  }
}

std::vector<TraceRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out = ring_;
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

uint64_t Tracer::records_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

}  // namespace graft::common
