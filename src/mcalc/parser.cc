#include "mcalc/parser.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

namespace graft::mcalc {

namespace {

enum class TokenKind {
  kWord,       // bare word (keyword or predicate name)
  kQuoted,     // quoted phrase content (already split into words)
  kPipe,       // |
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kBang,       // !
  kInt,        // integer literal inside predicate brackets
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;                  // kWord: original case preserved
  std::vector<std::string> words;    // kQuoted
  int64_t value = 0;                 // kInt
  size_t pos = 0;                    // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Lex() {
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token token;
      token.pos = i;
      switch (c) {
        case '|': token.kind = TokenKind::kPipe; ++i; break;
        case '(': token.kind = TokenKind::kLParen; ++i; break;
        case ')': token.kind = TokenKind::kRParen; ++i; break;
        case '[': token.kind = TokenKind::kLBracket; ++i; break;
        case ']': token.kind = TokenKind::kRBracket; ++i; break;
        case ',': token.kind = TokenKind::kComma; ++i; break;
        case '!': token.kind = TokenKind::kBang; ++i; break;
        case '"': {
          ++i;
          const size_t start = i;
          while (i < n && text_[i] != '"') ++i;
          if (i >= n) {
            return Status::InvalidArgument(
                "unterminated quote at offset " + std::to_string(token.pos));
          }
          token.kind = TokenKind::kQuoted;
          token.words = SplitWords(text_.substr(start, i - start));
          if (token.words.empty()) {
            return Status::InvalidArgument("empty phrase");
          }
          ++i;  // closing quote
          break;
        }
        default: {
          if (std::isdigit(static_cast<unsigned char>(c))) {
            // Integers only appear inside predicate brackets; in keyword
            // position digit-led tokens are treated as words, so we decide
            // by context in the parser. Lex as word; parser re-reads ints.
          }
          if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
              c != '-') {
            return Status::InvalidArgument(
                std::string("unexpected character '") + c + "' at offset " +
                std::to_string(i));
          }
          const size_t start = i;
          while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                           text_[i] == '_' || text_[i] == '-')) {
            ++i;
          }
          token.kind = TokenKind::kWord;
          token.text = std::string(text_.substr(start, i - start));
          break;
        }
      }
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.pos = n;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  static std::vector<std::string> SplitWords(std::string_view s) {
    std::vector<std::string> words;
    std::string current;
    for (const char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        current.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) words.push_back(std::move(current));
    return words;
  }

  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> Parse() {
    Query query;
    auto root = ParseDisjunct(&query);
    if (!root.ok()) return root.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(Peek().pos));
    }
    query.root = std::move(root).value();
    GRAFT_RETURN_IF_ERROR(ValidateQuery(query));
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  VarId BindVariable(Query* query, const std::string& keyword) {
    const VarId id = static_cast<VarId>(query->variables.size());
    query->variables.push_back(Variable{id, keyword});
    return id;
  }

  static std::string Lowercase(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
  }

  static bool IsAllUpper(const std::string& s) {
    bool has_alpha = false;
    for (const char c : s) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        has_alpha = true;
        if (std::islower(static_cast<unsigned char>(c))) return false;
      }
    }
    return has_alpha;
  }

  StatusOr<NodePtr> ParseDisjunct(Query* query) {
    std::vector<NodePtr> branches;
    auto first = ParseConjunct(query);
    if (!first.ok()) return first.status();
    branches.push_back(std::move(first).value());
    while (Accept(TokenKind::kPipe)) {
      auto next = ParseConjunct(query);
      if (!next.ok()) return next.status();
      branches.push_back(std::move(next).value());
    }
    if (branches.size() == 1) {
      return std::move(branches[0]);
    }
    return MakeOr(std::move(branches));
  }

  StatusOr<NodePtr> ParseConjunct(Query* query) {
    std::vector<NodePtr> factors;
    while (true) {
      const TokenKind kind = Peek().kind;
      if (kind != TokenKind::kWord && kind != TokenKind::kQuoted &&
          kind != TokenKind::kLParen && kind != TokenKind::kBang) {
        break;
      }
      auto factor = ParseFactor(query);
      if (!factor.ok()) return factor.status();
      factors.push_back(std::move(factor).value());
    }
    if (factors.empty()) {
      return Status::InvalidArgument("expected a keyword, phrase, or group "
                                     "at offset " +
                                     std::to_string(Peek().pos));
    }
    if (factors.size() == 1) {
      return std::move(factors[0]);
    }
    return MakeAnd(std::move(factors));
  }

  StatusOr<NodePtr> ParseFactor(Query* query) {
    if (Accept(TokenKind::kBang)) {
      auto child = ParseFactor(query);
      if (!child.ok()) return child.status();
      return MakeNot(std::move(child).value());
    }
    return ParsePrimary(query);
  }

  StatusOr<NodePtr> ParsePrimary(Query* query) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kWord: {
        const std::string keyword = Lowercase(Take().text);
        const VarId var = BindVariable(query, keyword);
        return MakeKeyword(keyword, var);
      }
      case TokenKind::kQuoted: {
        const Token phrase = Take();
        std::vector<NodePtr> words;
        std::vector<VarId> vars;
        for (const std::string& word : phrase.words) {
          const VarId var = BindVariable(query, word);
          vars.push_back(var);
          words.push_back(MakeKeyword(word, var));
        }
        if (words.size() == 1) {
          return std::move(words[0]);
        }
        std::vector<PredicateCall> constraints;
        for (size_t i = 1; i < vars.size(); ++i) {
          constraints.push_back(
              PredicateCall{"DISTANCE", {vars[i - 1], vars[i]}, {1}});
        }
        return MakeConstrained(MakeAnd(std::move(words)),
                               std::move(constraints));
      }
      case TokenKind::kLParen: {
        Take();
        auto inner = ParseDisjunct(query);
        if (!inner.ok()) return inner.status();
        if (!Accept(TokenKind::kRParen)) {
          return Status::InvalidArgument("expected ')' at offset " +
                                         std::to_string(Peek().pos));
        }
        // Optional trailing predicate: PRED '[' INT (',' INT)* ']'.
        if (Peek().kind == TokenKind::kWord && IsAllUpper(Peek().text) &&
            (Peek(1).kind == TokenKind::kLBracket ||
             PredicateTakesNoParams(Peek().text))) {
          const std::string pred_name = Take().text;
          std::vector<int64_t> params;
          if (Accept(TokenKind::kLBracket)) {
            while (true) {
              const Token& p = Peek();
              if (p.kind != TokenKind::kWord || p.text.empty() ||
                  !std::isdigit(static_cast<unsigned char>(p.text[0]))) {
                return Status::InvalidArgument(
                    "expected integer parameter for " + pred_name);
              }
              params.push_back(std::stoll(Take().text));
              if (!Accept(TokenKind::kComma)) break;
            }
            if (!Accept(TokenKind::kRBracket)) {
              return Status::InvalidArgument("expected ']' after " +
                                             pred_name + " parameters");
            }
          }
          NodePtr child = std::move(inner).value();
          const std::vector<VarId> vars = FreeVariables(*child);
          PredicateCall call{pred_name, vars, std::move(params)};
          GRAFT_RETURN_IF_ERROR(ValidatePredicateCall(call));
          return MakeConstrained(std::move(child), {std::move(call)});
        }
        return inner;
      }
      default:
        return Status::InvalidArgument("unexpected token at offset " +
                                       std::to_string(token.pos));
    }
  }

  static bool PredicateTakesNoParams(const std::string& name) {
    const PredicateDef* def = PredicateRegistry::Global().Lookup(name);
    return def != nullptr && def->num_params == 0;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Lex();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace graft::mcalc
