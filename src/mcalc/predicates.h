// Full-text positional predicates (Section 3.1).
//
// MCalc supports predicates of the form PRED(p̄, c̄): constraints over
// position variables p̄ parameterized by constants c̄. Built-ins:
//
//   DISTANCE(p1, p2, n)   exact distance: p2 - p1 == n
//   PROXIMITY(p..., n)    span of the positions <= n
//   WINDOW(p..., n)       span of the positions <= n
//   ORDER(p...)           positions strictly increasing
//
// PHRASE is syntactic sugar (a chain of DISTANCE(p_i, p_{i+1}, 1)) expanded
// by the parser. PROXIMITY and WINDOW are defined only for pairs in the
// paper but used over 3+ keywords in its evaluation queries (Q9, Q10); we
// generalize both to the span (max - min) of the bound positions.
//
// Empty-position semantics: a position bound to ∅ is "inconsequential to
// the match" (Section 3.1), so predicates are evaluated over the non-∅
// arguments only; with fewer than two real positions every built-in is
// satisfied. This matches the paper's Figure 2 match table, where the
// foss-branch rows carry ∅ for 'free'/'software' yet pass DISTANCE.
//
// User-defined predicates (the paper's "plug-in" predicates such as
// SAMESENTENCE) register an evaluator in PredicateRegistry.

#ifndef GRAFT_MCALC_PREDICATES_H_
#define GRAFT_MCALC_PREDICATES_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/types.h"

namespace graft::mcalc {

// Query position-variable id (index into the query's variable table).
using VarId = int32_t;

// Evaluates a predicate over the non-∅ positions (in variable order) and
// the constant parameters. Must be a pure function.
using PredicateEvaluator = std::function<bool(
    std::span<const Offset> positions, std::span<const int64_t> params)>;

struct PredicateDef {
  std::string name;
  // Accepted variable-argument counts (inclusive). max_vars < 0 = unbounded.
  int min_vars = 2;
  int max_vars = -1;
  // Exact number of constant parameters.
  int num_params = 1;
  PredicateEvaluator evaluator;
};

class PredicateRegistry {
 public:
  // The process-wide registry, pre-populated with the built-ins.
  static PredicateRegistry& Global();

  // Registers a user-defined predicate. Fails if the name is taken.
  Status Register(PredicateDef def);

  // Returns nullptr if unknown.
  const PredicateDef* Lookup(std::string_view name) const;

  std::vector<std::string> Names() const;

 private:
  PredicateRegistry();

  std::unordered_map<std::string, PredicateDef> defs_;
};

// One predicate application within a query: PRED(vars..., params...).
struct PredicateCall {
  std::string name;
  std::vector<VarId> vars;
  std::vector<int64_t> params;

  bool operator==(const PredicateCall& other) const = default;

  std::string ToString() const;
};

// Evaluates `call` given a positions accessor mapping VarId -> Offset
// (kEmptyOffset for ∅). Returns InvalidArgument for unknown predicates or
// arity violations; those are normally rejected at query-validation time.
StatusOr<bool> EvaluatePredicate(
    const PredicateCall& call,
    const std::function<Offset(VarId)>& position_of);

// Validates name/arity against the registry.
Status ValidatePredicateCall(const PredicateCall& call);

}  // namespace graft::mcalc

#endif  // GRAFT_MCALC_PREDICATES_H_
