// The Matching Calculus (MCalc) query representation (Section 3.1).
//
// A query is a boolean structure over HAS atoms plus positional predicate
// constraints. Each keyword occurrence in the query binds a fresh position
// variable p_i (appearance order). A match is a tuple ⟨d, p0..pn⟩ of
// positions in d (or ∅) satisfying the formula; variables not bound by the
// disjunct that produced a match are ∅ (the EMPTY predicate of the paper —
// this is what makes disjunctive queries safe).
//
// The tree shapes produced here correspond 1:1 to the paper's examples:
// query Q3 is And( Pred(And(windows, emulator), WINDOW[50])?, ... ) — see
// parser_test.cc for the exact shape.

#ifndef GRAFT_MCALC_AST_H_
#define GRAFT_MCALC_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mcalc/predicates.h"

namespace graft::mcalc {

enum class NodeKind {
  kKeyword,      // HAS(d, p_var, keyword)
  kAnd,          // conjunction of children
  kOr,           // disjunction of children
  kNot,          // negation (child's variables are quantified away)
  kConstrained,  // child ∧ predicate constraints over child's variables
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind;

  // kKeyword:
  std::string keyword;
  VarId var = -1;

  // kAnd / kOr: 2+ children. kNot / kConstrained: exactly 1 child.
  std::vector<NodePtr> children;

  // kConstrained:
  std::vector<PredicateCall> constraints;

  Node Clone() const;
  NodePtr ClonePtr() const;
};

// Variable metadata: which keyword each position variable ranges over.
struct Variable {
  VarId id;
  std::string keyword;
};

// A complete MCalc query.
struct Query {
  NodePtr root;
  std::vector<Variable> variables;  // indexed by VarId

  Query() = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  Query Clone() const;

  size_t num_variables() const { return variables.size(); }
};

// ---- Construction helpers (used by the parser, tests, and examples) ----

NodePtr MakeKeyword(std::string keyword, VarId var);
NodePtr MakeAnd(std::vector<NodePtr> children);
NodePtr MakeOr(std::vector<NodePtr> children);
NodePtr MakeNot(NodePtr child);
NodePtr MakeConstrained(NodePtr child, std::vector<PredicateCall> constraints);

// Variables bound by the subtree, in appearance order, excluding variables
// under kNot (those are quantified, not free).
std::vector<VarId> FreeVariables(const Node& node);

// Collects every predicate call in the tree.
std::vector<const PredicateCall*> AllConstraints(const Node& node);

// Renders the query as an MCalc first-order formula over HAS / EMPTY /
// predicates, in the style of the paper's Example 1 and 2.
std::string ToMCalcString(const Query& query);

// Safety / well-formedness validation (the paper's safe-range condition):
//  * variable ids are dense, unique per keyword occurrence, in range;
//  * predicate constraints reference only variables free in their scope;
//  * predicate names/arities validate against the registry;
//  * negation does not contain the only binding of a variable used outside;
//  * And/Or have >= 2 children, Not/Constrained exactly 1.
Status ValidateQuery(const Query& query);

}  // namespace graft::mcalc

#endif  // GRAFT_MCALC_AST_H_
