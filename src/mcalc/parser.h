// Parser for the paper's Section 8 shorthand query syntax.
//
//   query    := disjunct
//   disjunct := conjunct ('|' conjunct)*
//   conjunct := factor+                       (juxtaposition is AND)
//   factor   := '!' factor | primary
//   primary  := WORD
//             | '"' WORD+ '"'                 (PHRASE: DISTANCE(p_i,p_i+1,1))
//             | '(' disjunct ')' [PRED '[' INT (',' INT)* ']']
//
// PRED is an upper-case predicate name registered in PredicateRegistry
// (DISTANCE, PROXIMITY, WINDOW, ORDER, or user-defined). A predicate
// attached to a group applies to all keyword variables bound inside the
// group, in appearance order. Examples (the paper's evaluation queries):
//
//   Q8:  (windows emulator)WINDOW[50] (foss | "free software")
//   Q10: arizona ((fishing | hunting) (rules | regulations))WINDOW[20]
//   Q11: "rick warren" (obama inauguration)PROXIMITY[4]
//          (controversy invocation)PROXIMITY[15]
//
// Keywords are lowercased. Each keyword occurrence binds a fresh position
// variable in appearance order (p0, p1, ...).

#ifndef GRAFT_MCALC_PARSER_H_
#define GRAFT_MCALC_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "mcalc/ast.h"

namespace graft::mcalc {

StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace graft::mcalc

#endif  // GRAFT_MCALC_PARSER_H_
