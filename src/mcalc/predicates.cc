#include "mcalc/predicates.h"

#include <algorithm>

namespace graft::mcalc {

namespace {

bool SpanAtMost(std::span<const Offset> positions,
                std::span<const int64_t> params) {
  if (positions.size() < 2) {
    return true;
  }
  const auto [min_it, max_it] =
      std::minmax_element(positions.begin(), positions.end());
  return static_cast<int64_t>(*max_it) - static_cast<int64_t>(*min_it) <=
         params[0];
}

bool ExactDistance(std::span<const Offset> positions,
                   std::span<const int64_t> params) {
  if (positions.size() < 2) {
    return true;
  }
  return static_cast<int64_t>(positions[1]) -
             static_cast<int64_t>(positions[0]) ==
         params[0];
}

bool StrictOrder(std::span<const Offset> positions,
                 std::span<const int64_t> /*params*/) {
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i - 1] >= positions[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

PredicateRegistry::PredicateRegistry() {
  defs_["DISTANCE"] = PredicateDef{"DISTANCE", 2, 2, 1, ExactDistance};
  defs_["PROXIMITY"] = PredicateDef{"PROXIMITY", 2, -1, 1, SpanAtMost};
  defs_["WINDOW"] = PredicateDef{"WINDOW", 2, -1, 1, SpanAtMost};
  defs_["ORDER"] = PredicateDef{"ORDER", 2, -1, 0, StrictOrder};
}

PredicateRegistry& PredicateRegistry::Global() {
  // Function-local static reference: intentionally leaked to avoid static
  // destruction ordering issues (Google style).
  static PredicateRegistry& registry = *new PredicateRegistry();
  return registry;
}

Status PredicateRegistry::Register(PredicateDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("predicate name must be non-empty");
  }
  if (!def.evaluator) {
    return Status::InvalidArgument("predicate evaluator must be set");
  }
  const auto [it, inserted] = defs_.try_emplace(def.name, std::move(def));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("predicate already registered: " +
                                 it->second.name);
  }
  return Status::Ok();
}

const PredicateDef* PredicateRegistry::Lookup(std::string_view name) const {
  const auto it = defs_.find(std::string(name));
  return it == defs_.end() ? nullptr : &it->second;
}

std::vector<std::string> PredicateRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(defs_.size());
  for (const auto& [name, def] : defs_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string PredicateCall::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ",";
    out += "p" + std::to_string(vars[i]);
  }
  for (const int64_t param : params) {
    out += "," + std::to_string(param);
  }
  out += ")";
  return out;
}

Status ValidatePredicateCall(const PredicateCall& call) {
  const PredicateDef* def = PredicateRegistry::Global().Lookup(call.name);
  if (def == nullptr) {
    return Status::NotFound("unknown predicate: " + call.name);
  }
  const int nvars = static_cast<int>(call.vars.size());
  if (nvars < def->min_vars ||
      (def->max_vars >= 0 && nvars > def->max_vars)) {
    return Status::InvalidArgument("predicate " + call.name +
                                   " variable-arity violation");
  }
  if (static_cast<int>(call.params.size()) != def->num_params) {
    return Status::InvalidArgument("predicate " + call.name +
                                   " expects " +
                                   std::to_string(def->num_params) +
                                   " constant parameter(s)");
  }
  return Status::Ok();
}

StatusOr<bool> EvaluatePredicate(
    const PredicateCall& call,
    const std::function<Offset(VarId)>& position_of) {
  const PredicateDef* def = PredicateRegistry::Global().Lookup(call.name);
  if (def == nullptr) {
    return Status::NotFound("unknown predicate: " + call.name);
  }
  // Collect non-∅ positions in variable order.
  Offset positions[64];
  size_t count = 0;
  for (const VarId var : call.vars) {
    const Offset offset = position_of(var);
    if (offset != kEmptyOffset) {
      if (count >= 64) {
        return Status::OutOfRange("predicate over more than 64 variables");
      }
      positions[count++] = offset;
    }
  }
  return def->evaluator(std::span<const Offset>(positions, count),
                        call.params);
}

}  // namespace graft::mcalc
