#include "mcalc/ast.h"

#include <algorithm>
#include <functional>
#include <set>

namespace graft::mcalc {

Node Node::Clone() const {
  Node copy;
  copy.kind = kind;
  copy.keyword = keyword;
  copy.var = var;
  copy.constraints = constraints;
  copy.children.reserve(children.size());
  for (const NodePtr& child : children) {
    copy.children.push_back(child->ClonePtr());
  }
  return copy;
}

NodePtr Node::ClonePtr() const { return std::make_unique<Node>(Clone()); }

Query Query::Clone() const {
  Query copy;
  copy.root = root == nullptr ? nullptr : root->ClonePtr();
  copy.variables = variables;
  return copy;
}

NodePtr MakeKeyword(std::string keyword, VarId var) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kKeyword;
  node->keyword = std::move(keyword);
  node->var = var;
  return node;
}

NodePtr MakeAnd(std::vector<NodePtr> children) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kAnd;
  node->children = std::move(children);
  return node;
}

NodePtr MakeOr(std::vector<NodePtr> children) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kOr;
  node->children = std::move(children);
  return node;
}

NodePtr MakeNot(NodePtr child) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kNot;
  node->children.push_back(std::move(child));
  return node;
}

NodePtr MakeConstrained(NodePtr child,
                        std::vector<PredicateCall> constraints) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kConstrained;
  node->children.push_back(std::move(child));
  node->constraints = std::move(constraints);
  return node;
}

namespace {

void CollectFreeVariables(const Node& node, std::vector<VarId>* out) {
  switch (node.kind) {
    case NodeKind::kKeyword:
      out->push_back(node.var);
      return;
    case NodeKind::kNot:
      return;  // Quantified away.
    case NodeKind::kAnd:
    case NodeKind::kOr:
    case NodeKind::kConstrained:
      for (const NodePtr& child : node.children) {
        CollectFreeVariables(*child, out);
      }
      return;
  }
}

void CollectConstraints(const Node& node,
                        std::vector<const PredicateCall*>* out) {
  if (node.kind == NodeKind::kConstrained) {
    for (const PredicateCall& call : node.constraints) {
      out->push_back(&call);
    }
  }
  for (const NodePtr& child : node.children) {
    CollectConstraints(*child, out);
  }
}

std::string NodeToMCalc(const Node& node) {
  switch (node.kind) {
    case NodeKind::kKeyword:
      return "HAS(d,p" + std::to_string(node.var) + ",'" + node.keyword +
             "')";
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      const char* connective = node.kind == NodeKind::kAnd ? " ∧ " : " ∨ ";
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += connective;
        out += NodeToMCalc(*node.children[i]);
      }
      out += ")";
      return out;
    }
    case NodeKind::kNot:
      return "¬" + NodeToMCalc(*node.children[0]);
    case NodeKind::kConstrained: {
      std::string out = "(" + NodeToMCalc(*node.children[0]);
      for (const PredicateCall& call : node.constraints) {
        out += " ∧ " + call.ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace

std::vector<VarId> FreeVariables(const Node& node) {
  std::vector<VarId> vars;
  CollectFreeVariables(node, &vars);
  return vars;
}

std::vector<const PredicateCall*> AllConstraints(const Node& node) {
  std::vector<const PredicateCall*> calls;
  CollectConstraints(node, &calls);
  return calls;
}

std::string ToMCalcString(const Query& query) {
  if (query.root == nullptr) {
    return "{}";
  }
  std::string head = "{⟨d";
  for (const Variable& var : query.variables) {
    head += ",p" + std::to_string(var.id);
  }
  head += "⟩ | ";
  return head + NodeToMCalc(*query.root) + "}";
}

namespace {

Status ValidateNode(const Node& node, const Query& query,
                    std::set<VarId>* seen_bindings) {
  switch (node.kind) {
    case NodeKind::kKeyword: {
      if (node.var < 0 ||
          node.var >= static_cast<VarId>(query.variables.size())) {
        return Status::InvalidArgument("variable id out of range");
      }
      if (!seen_bindings->insert(node.var).second) {
        return Status::InvalidArgument(
            "variable p" + std::to_string(node.var) +
            " bound by more than one keyword occurrence");
      }
      if (query.variables[node.var].keyword != node.keyword) {
        return Status::InvalidArgument(
            "variable table keyword mismatch for p" +
            std::to_string(node.var));
      }
      if (node.keyword.empty()) {
        return Status::InvalidArgument("empty keyword");
      }
      return Status::Ok();
    }
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      if (node.children.size() < 2) {
        return Status::InvalidArgument(
            "And/Or must have at least two children");
      }
      for (const NodePtr& child : node.children) {
        GRAFT_RETURN_IF_ERROR(ValidateNode(*child, query, seen_bindings));
      }
      return Status::Ok();
    }
    case NodeKind::kNot: {
      if (node.children.size() != 1) {
        return Status::InvalidArgument("Not must have exactly one child");
      }
      return ValidateNode(*node.children[0], query, seen_bindings);
    }
    case NodeKind::kConstrained: {
      if (node.children.size() != 1) {
        return Status::InvalidArgument(
            "Constrained must have exactly one child");
      }
      GRAFT_RETURN_IF_ERROR(
          ValidateNode(*node.children[0], query, seen_bindings));
      const std::vector<VarId> scope = FreeVariables(*node.children[0]);
      const std::set<VarId> scope_set(scope.begin(), scope.end());
      for (const PredicateCall& call : node.constraints) {
        GRAFT_RETURN_IF_ERROR(ValidatePredicateCall(call));
        for (const VarId var : call.vars) {
          if (scope_set.count(var) == 0) {
            return Status::InvalidArgument(
                "predicate " + call.name + " references p" +
                std::to_string(var) + " outside its scope (safe-range "
                "violation)");
          }
        }
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown node kind");
}

}  // namespace

Status ValidateQuery(const Query& query) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query has no root");
  }
  for (size_t i = 0; i < query.variables.size(); ++i) {
    if (query.variables[i].id != static_cast<VarId>(i)) {
      return Status::InvalidArgument("variable table ids must be dense");
    }
  }
  std::set<VarId> bindings;
  GRAFT_RETURN_IF_ERROR(ValidateNode(*query.root, query, &bindings));
  // Every variable in the table must be bound somewhere (possibly under
  // negation; negated bindings are still bindings for table purposes).
  if (bindings.size() != query.variables.size()) {
    // Recount including negated subtrees.
    std::vector<VarId> all;
    std::function<void(const Node&)> collect = [&](const Node& node) {
      if (node.kind == NodeKind::kKeyword) all.push_back(node.var);
      for (const NodePtr& child : node.children) collect(*child);
    };
    collect(*query.root);
    if (all.size() != query.variables.size()) {
      return Status::InvalidArgument(
          "variable table size does not match keyword occurrences");
    }
  }
  return Status::Ok();
}

}  // namespace graft::mcalc
