// The scatter-gather front end: an HTTP router process that fans /search
// out to N shard servers through ScatterGather and serves the merged,
// score-consistent ranking.
//
//   GET /search?q=<query>&scheme=<name>&k=<n>[&deadline_ms=<n>][&explain=1]
//       -> 200 JSON: the merged top-k over every shard, bit-identical to a
//          single-process run over the whole corpus when all shards
//          answer. The response always carries the degradation contract:
//          "degraded" (true when any shard did not contribute),
//          "shards_total"/"shards_ok" coverage, and a per-shard "shards"
//          outcome array (outcome, replica port, attempts, hedged,
//          results contributed, latency). &explain=1 adds the stats epoch
//          and the pinned statistics summary.
//       -> 502 Bad Gateway when every shard failed, or when any shard
//          failed under --policy fail (a partial answer is never silently
//          presented as complete).
//   GET /stats   -> 200 JSON cumulative router counters + percentiles.
//   GET /metrics -> 200 Prometheus exposition: router counters, gather
//                   counters (hedges, refreshes, partials), and per-shard
//                   wire counters + ejected-replica gauges.
//   GET /healthz -> 200 while any shard is reachable; reports per-shard
//                   healthy replica counts.
//
// Concurrency model mirrors server::SearchService exactly (accept thread +
// handler pool + connection-level admission cap + Retry-After on 503/504);
// the request deadline budget is handed to ScatterGather, which spends it
// across stats collection, retries, backoff, and hedges.

#ifndef GRAFT_ROUTER_ROUTER_SERVICE_H_
#define GRAFT_ROUTER_ROUTER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "router/scatter_gather.h"
#include "server/http.h"
#include "server/search_service.h"
#include "server/server_stats.h"

namespace graft::router {

struct RouterOptions {
  // 0 = kernel-assigned ephemeral port (tests; read back via port()).
  uint16_t port = 0;
  // Handler pool workers. 0 = hardware concurrency.
  size_t handler_threads = 0;
  // Admission cap, as in server::ServiceOptions.
  size_t max_inflight = 64;
  // Deadline budget applied when the client sends no deadline_ms; client
  // values are clamped to max_deadline_ms.
  uint64_t default_deadline_ms = 2000;
  uint64_t max_deadline_ms = 30000;
  size_t default_top_k = 10;
  size_t max_top_k = 10000;
  int io_timeout_ms = 5000;
  unsigned retry_after_s = 1;
  // Fan-out behavior (shard client retry discipline, hedging, partial
  // policy, probe cadence).
  ScatterGatherOptions gather;
};

// Cumulative router request counters. Same outcome identity as
// server::ServerStats: responses_ok + client_errors + bad_gateway +
// rejected_overload + deadline_exceeded (+ the malformed subset of 4xx)
// partitions requests_total once drained.
struct RouterStats {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> responses_ok{0};        // 2xx (incl. degraded 200s)
  std::atomic<uint64_t> client_errors{0};       // 4xx
  std::atomic<uint64_t> bad_gateway{0};         // 502 (shard failures)
  std::atomic<uint64_t> rejected_overload{0};   // 503
  std::atomic<uint64_t> deadline_exceeded{0};   // 504
  std::atomic<uint64_t> malformed_requests{0};
  // Degraded 200s: a partial merge was served under --policy partial.
  // Subset of responses_ok.
  std::atomic<uint64_t> partial_responses{0};
  server::LatencyHistogram search_latency;
  server::SchemeCounters scheme_counts;

  void RecordResponseCode(int status_code);
};

class RouterService {
 public:
  // `shard_replicas[i]` lists replica ports of shard i, in global doc-id
  // order (the contiguous corpus split).
  RouterService(std::vector<std::vector<uint16_t>> shard_replicas,
                RouterOptions options);
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  // Binds the listener, starts the accept thread + handler pool + the
  // replica readmission probe thread.
  Status Start();

  // Stops accepting, drains admitted requests, joins everything.
  void Shutdown();

  uint16_t port() const { return listener_.port(); }
  const RouterStats& stats() const { return stats_; }
  ScatterGather& gather() { return *gather_; }
  const ScatterGather& gather() const { return *gather_; }

  // Routes one parsed request; exposed so tests can drive the handler
  // without sockets (mirrors SearchService::Handle).
  server::Response Handle(const server::HttpRequest& request,
                          uint64_t queued_micros);

 private:
  void AcceptLoop();
  void HandleConnection(int fd,
                        std::chrono::steady_clock::time_point admitted);
  server::Response HandleSearch(const server::HttpRequest& request,
                                uint64_t queued_micros);
  server::Response HandleStats() const;
  server::Response HandleMetrics() const;
  server::Response HandleHealthz() const;

  const RouterOptions options_;
  std::unique_ptr<ScatterGather> gather_;

  server::TcpListener listener_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::thread accept_thread_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::atomic<size_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  RouterStats stats_;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace graft::router

#endif  // GRAFT_ROUTER_ROUTER_SERVICE_H_
