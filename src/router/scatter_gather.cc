#include "router/scatter_gather.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <set>

namespace graft::router {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count());
}

// Score-desc, doc-asc: exactly core::Engine's MergeRanked order, so the
// router's merged ranking coincides with the single-process one whenever
// the per-document scores do (which the pinned statistics guarantee).
bool ScoredBefore(const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

// ---- strict mini-parsers for the two shard reply shapes ----
//
// These accept exactly what SearchService serializes. Anything else —
// including a garbled or mid-stream-cut body from the chaos failpoints —
// is DataLoss, which the gather loop counts as a shard failure. The
// parsers never trust lengths or run past the buffer.

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool SkipTo(std::string_view marker) {
    const size_t pos = text_.find(marker, at_);
    if (pos == std::string_view::npos) return false;
    at_ = pos + marker.size();
    return true;
  }

  bool Literal(char c) {
    if (at_ >= text_.size() || text_[at_] != c) return false;
    ++at_;
    return true;
  }

  bool Peek(char c) const { return at_ < text_.size() && text_[at_] == c; }

  bool U64(uint64_t* out) {
    size_t i = at_;
    uint64_t value = 0;
    while (i < text_.size() && text_[i] >= '0' && text_[i] <= '9') {
      const uint64_t digit = static_cast<uint64_t>(text_[i] - '0');
      if (value > (UINT64_MAX - digit) / 10) return false;
      value = value * 10 + digit;
      ++i;
    }
    if (i == at_) return false;
    at_ = i;
    *out = value;
    return true;
  }

  // %.17g-rendered double (round-trips exactly through strtod).
  bool Double(double* out) {
    if (at_ >= text_.size()) return false;
    const std::string token(text_.substr(at_, 64));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) return false;
    at_ += static_cast<size_t>(end - token.c_str());
    *out = value;
    return true;
  }

  // JSON string content up to the closing quote; handles the escapes
  // JsonAppendEscaped emits. The opening quote must already be consumed.
  bool JsonString(std::string* out) {
    out->clear();
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_ >= text_.size()) return false;
      const char esc = text_[at_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (at_ + 4 > text_.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            int nibble;
            if (h >= '0' && h <= '9') nibble = h - '0';
            else if (h >= 'a' && h <= 'f') nibble = h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') nibble = h - 'A' + 10;
            else return false;
            value = value * 16 + static_cast<unsigned>(nibble);
          }
          // The serializer only \u-escapes control bytes (< 0x20).
          if (value > 0xFF) return false;
          out->push_back(static_cast<char>(value));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // ran off the end before the closing quote
  }

 private:
  std::string_view text_;
  size_t at_ = 0;
};

}  // namespace

StatusOr<std::vector<ma::ScoredDoc>> ParseResultsFragment(
    std::string_view body) {
  Cursor cursor(body);
  if (!cursor.SkipTo("\"results\":[")) {
    return Status::DataLoss("shard reply: no results array");
  }
  std::vector<ma::ScoredDoc> results;
  if (cursor.Literal(']')) return results;
  while (true) {
    uint64_t doc = 0;
    double score = 0.0;
    if (!cursor.SkipTo("{\"doc\":") || !cursor.U64(&doc) ||
        !cursor.SkipTo(",\"score\":") || !cursor.Double(&score) ||
        !cursor.Literal('}')) {
      return Status::DataLoss("shard reply: malformed result entry");
    }
    if (doc > std::numeric_limits<DocId>::max()) {
      return Status::DataLoss("shard reply: doc id out of range");
    }
    results.push_back(
        ma::ScoredDoc{static_cast<DocId>(doc), score});
    if (cursor.Literal(']')) break;
    if (!cursor.Literal(',')) {
      return Status::DataLoss("shard reply: results array not terminated");
    }
  }
  return results;
}

StatusOr<ShardStatsReply> ParseShardStatsReply(std::string_view body) {
  Cursor cursor(body);
  ShardStatsReply reply;
  if (!cursor.SkipTo("\"generation\":") || !cursor.U64(&reply.generation) ||
      !cursor.SkipTo("\"doc_count\":") || !cursor.U64(&reply.doc_count) ||
      !cursor.SkipTo("\"total_words\":") || !cursor.U64(&reply.total_words) ||
      !cursor.SkipTo("\"terms\":[")) {
    return Status::DataLoss("shard stats reply: malformed header");
  }
  if (cursor.Literal(']')) return reply;
  while (true) {
    server::PinnedTermStats term;
    if (!cursor.SkipTo("{\"term\":\"") || !cursor.JsonString(&term.term) ||
        !cursor.SkipTo(",\"df\":") || !cursor.U64(&term.doc_freq) ||
        !cursor.SkipTo(",\"cf\":") || !cursor.U64(&term.collection_freq) ||
        !cursor.Literal('}')) {
      return Status::DataLoss("shard stats reply: malformed term entry");
    }
    reply.terms.push_back(std::move(term));
    if (cursor.Literal(']')) break;
    if (!cursor.Literal(',')) {
      return Status::DataLoss("shard stats reply: terms array not terminated");
    }
  }
  return reply;
}

ScatterGather::ScatterGather(
    std::vector<std::vector<uint16_t>> shard_replicas,
    ScatterGatherOptions options)
    : options_(options) {
  shards_.reserve(shard_replicas.size());
  for (size_t i = 0; i < shard_replicas.size(); ++i) {
    shards_.push_back(std::make_unique<ShardClient>(
        i, std::move(shard_replicas[i]), options_.client,
        options_.jitter_seed));
  }
  // Two slots per shard: the fan-out leg plus a possible hedged primary
  // leg can be in flight simultaneously without queueing behind each
  // other.
  const size_t workers = options_.fanout_threads != 0
                             ? options_.fanout_threads
                             : std::max<size_t>(1, shards_.size() * 2);
  pool_ = std::make_unique<common::ThreadPool>(workers);
}

ScatterGather::~ScatterGather() {
  StopProbes();
  // pool_ is destroyed before shards_ (reverse member order), so no leg
  // can touch a dead ShardClient.
  pool_.reset();
}

void ScatterGather::StartProbes() {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probes_running_) return;
  probe_stop_ = false;
  probes_running_ = true;
  probe_thread_ = std::thread([this] { ProbeLoop(); });
}

void ScatterGather::StopProbes() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    if (!probes_running_) return;
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  probe_thread_.join();
  std::lock_guard<std::mutex> lock(probe_mu_);
  probes_running_ = false;
}

void ScatterGather::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  while (!probe_stop_) {
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this] { return probe_stop_; });
    if (probe_stop_) return;
    lock.unlock();
    for (const auto& shard : shards_) {
      shard->ProbeEjected();
    }
    lock.lock();
  }
}

void ScatterGather::InvalidateStats() {
  // Caller holds stats_mu_.
  stats_cache_ = StatsCache();
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  counters_.stats_refreshes.fetch_add(1, std::memory_order_relaxed);
}

StatusOr<server::PinnedStats> ScatterGather::CollectStats(
    const std::vector<std::string>& terms, uint64_t budget_ms,
    std::vector<uint64_t>* bases, std::vector<uint64_t>* generations) {
  const Clock::time_point start = Clock::now();
  // Deterministic unique term order (also the gstats emission order).
  const std::set<std::string> unique(terms.begin(), terms.end());

  // Fast path: everything cached under the current epoch — no wire I/O,
  // which is what lets a query whose terms were collected while a shard
  // was healthy still be answered (partially) after that shard dies.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_cache_.primed) {
      bool all_cached = true;
      for (const std::string& term : unique) {
        if (stats_cache_.terms.find(term) == stats_cache_.terms.end()) {
          all_cached = false;
          break;
        }
      }
      if (all_cached) {
        server::PinnedStats pinned;
        pinned.doc_count = stats_cache_.doc_count;
        pinned.total_words = stats_cache_.total_words;
        for (const std::string& term : unique) {
          const TermStats& cached = stats_cache_.terms[term];
          pinned.terms.push_back(
              server::PinnedTermStats{term, cached.df, cached.cf});
        }
        *bases = stats_cache_.bases;
        *generations = stats_cache_.generations;
        return pinned;
      }
    }
  }

  // Slow path: one collection round over every shard. Correct global
  // statistics are a sum over ALL shards, so a round only succeeds when
  // every shard answers (each ShardClient retries and fails over across
  // replicas internally). A round that observes a generation change
  // invalidates the cache and runs again, bounded by max_stats_refreshes.
  std::string target = "/shard/stats?terms=";
  {
    std::string joined;
    for (const std::string& term : unique) {
      if (!joined.empty()) joined += ',';
      joined += term;
    }
    target += server::UrlEncode(joined);
  }

  for (size_t round = 0; round <= options_.max_stats_refreshes; ++round) {
    const uint64_t elapsed = ElapsedMs(start);
    if (elapsed >= budget_ms) {
      return Status::IOError("stats collection deadline exhausted");
    }
    const uint64_t remaining = budget_ms - elapsed;

    const size_t n = shards_.size();
    std::vector<StatusOr<ShardStatsReply>> replies(
        n, Status::Internal("unreached"));
    common::ParallelFor(pool_.get(), 0, n, [&](size_t i) {
      StatusOr<server::HttpClientResponse> response =
          shards_[i]->Get(target, remaining);
      if (!response.ok()) {
        replies[i] = response.status();
        return;
      }
      if (response->status_code != 200) {
        replies[i] = Status::IOError(
            "shard " + std::to_string(i) + " /shard/stats answered " +
            std::to_string(response->status_code));
        return;
      }
      replies[i] = ParseShardStatsReply(response->body);
    });

    for (size_t i = 0; i < n; ++i) {
      if (!replies[i].ok()) {
        return Status::IOError(
            "stats collection failed for shard " + std::to_string(i) + ": " +
            std::string(replies[i].status().message()));
      }
    }

    std::lock_guard<std::mutex> lock(stats_mu_);
    // A concurrent round may have primed the cache at different
    // generations, or a shard may have reloaded since the cache was
    // primed. Either way the safe reaction is identical: rebuild the
    // cache from this round's replies under a fresh epoch.
    bool stale = false;
    if (stats_cache_.primed) {
      for (size_t i = 0; i < n; ++i) {
        if (stats_cache_.generations[i] != (*replies[i]).generation) {
          stale = true;
          break;
        }
      }
    }
    if (stale) InvalidateStats();

    if (!stats_cache_.primed) {
      stats_cache_.primed = true;
      stats_cache_.doc_count = 0;
      stats_cache_.total_words = 0;
      stats_cache_.bases.assign(n, 0);
      stats_cache_.generations.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        stats_cache_.bases[i] = stats_cache_.doc_count;
        stats_cache_.doc_count += (*replies[i]).doc_count;
        stats_cache_.total_words += (*replies[i]).total_words;
        stats_cache_.generations[i] = (*replies[i]).generation;
      }
    } else {
      // The cache is primed and this round's generations must match it to
      // be mergeable; a mismatch would have set `stale` above. A benign
      // re-fetch of already-cached terms just overwrites equal sums.
      bool mismatch = false;
      for (size_t i = 0; i < n; ++i) {
        if (stats_cache_.generations[i] != (*replies[i]).generation) {
          mismatch = true;
          break;
        }
      }
      if (mismatch) {
        InvalidateStats();
        continue;  // next round rebuilds from scratch
      }
    }

    // Fold per-term sums. Every reply lists the same terms in the same
    // order (the shards parse the same `terms=` string).
    std::unordered_map<std::string, TermStats> sums;
    for (size_t i = 0; i < n; ++i) {
      for (const server::PinnedTermStats& term : (*replies[i]).terms) {
        TermStats& slot = sums[term.term];
        slot.df += term.doc_freq;
        slot.cf += term.collection_freq;
      }
    }
    for (auto& [term, stats] : sums) {
      stats_cache_.terms[term] = stats;
    }

    server::PinnedStats pinned;
    pinned.doc_count = stats_cache_.doc_count;
    pinned.total_words = stats_cache_.total_words;
    for (const std::string& term : unique) {
      const auto it = stats_cache_.terms.find(term);
      if (it == stats_cache_.terms.end()) {
        return Status::Internal("stats collection lost term: " + term);
      }
      pinned.terms.push_back(
          server::PinnedTermStats{term, it->second.df, it->second.cf});
    }
    *bases = stats_cache_.bases;
    *generations = stats_cache_.generations;
    return pinned;
  }
  return Status::IOError(
      "stats collection kept racing generation changes (" +
      std::to_string(options_.max_stats_refreshes + 1) + " rounds)");
}

StatusOr<server::HttpClientResponse> ScatterGather::FanOne(
    size_t shard, const std::string& target, uint64_t budget_ms,
    ShardOutcome* outcome) {
  ShardClient* client = shards_[shard].get();
  const bool hedgeable = options_.hedge_ms > 0 &&
                         options_.hedge_ms < budget_ms &&
                         client->replica_count() >= 2;
  if (!hedgeable) {
    return client->Get(target, budget_ms, &outcome->attempts,
                       &outcome->port);
  }

  // Hedged request: the primary (with its own retry loop) runs on a pool
  // worker; if it has not answered after hedge_ms, a single hedge attempt
  // races it from this thread and the first usable reply wins. The losing
  // leg finishes on its own (bounded by budget/io timeouts) holding only
  // the shared race state.
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<StatusOr<server::HttpClientResponse>> primary;
    size_t primary_attempts = 0;
    uint16_t primary_port = 0;
  };
  auto race = std::make_shared<Race>();
  std::function<void()> primary_leg = [client, target, budget_ms, race] {
    size_t attempts = 0;
    uint16_t port = 0;
    StatusOr<server::HttpClientResponse> reply =
        client->Get(target, budget_ms, &attempts, &port);
    {
      std::lock_guard<std::mutex> lock(race->mu);
      race->primary = std::move(reply);
      race->primary_attempts = attempts;
      race->primary_port = port;
    }
    race->cv.notify_all();
  };
  if (!pool_->Submit(primary_leg)) {
    // Pool shutting down: no hedge race possible, run the leg inline.
    primary_leg();
  }

  {
    std::unique_lock<std::mutex> lock(race->mu);
    if (race->cv.wait_for(lock, std::chrono::milliseconds(options_.hedge_ms),
                          [&] { return race->primary.has_value(); })) {
      outcome->attempts = race->primary_attempts;
      outcome->port = race->primary_port;
      return std::move(*race->primary);
    }
  }

  // Straggler: launch the hedge leg.
  counters_.hedges_launched.fetch_add(1, std::memory_order_relaxed);
  outcome->hedged = true;
  uint16_t hedge_port = 0;
  StatusOr<server::HttpClientResponse> hedge =
      client->GetOnce(target, budget_ms - options_.hedge_ms, &hedge_port);
  const bool hedge_usable =
      hedge.ok() && hedge->status_code < 500;

  std::unique_lock<std::mutex> lock(race->mu);
  if (hedge_usable && !race->primary.has_value()) {
    counters_.hedges_won.fetch_add(1, std::memory_order_relaxed);
    outcome->attempts = 1;  // the hedge leg alone produced the verdict
    outcome->port = hedge_port;
    return hedge;
  }
  // Wait for the primary (bounded: its budget expires) and prefer it when
  // usable, else fall back to a usable hedge.
  race->cv.wait(lock, [&] { return race->primary.has_value(); });
  outcome->attempts = race->primary_attempts + 1;
  const bool primary_usable =
      race->primary->ok() && (*race->primary)->status_code < 500;
  if (primary_usable) {
    outcome->port = race->primary_port;
    return std::move(*race->primary);
  }
  if (hedge_usable) {
    counters_.hedges_won.fetch_add(1, std::memory_order_relaxed);
    outcome->port = hedge_port;
    return hedge;
  }
  outcome->port = race->primary_port;
  return std::move(*race->primary);
}

StatusOr<GatherResult> ScatterGather::Search(
    const std::vector<std::string>& terms,
    const std::string& raw_search_params, size_t k, uint64_t budget_ms) {
  counters_.gathers_total.fetch_add(1, std::memory_order_relaxed);
  if (k == 0) {
    return Status::InvalidArgument(
        "distributed search requires k > 0 (full result sets would need "
        "unbounded shard result exchange)");
  }
  if (shards_.empty()) {
    return Status::FailedPrecondition("no shards configured");
  }
  const Clock::time_point start = Clock::now();
  const size_t n = shards_.size();

  GatherResult gathered;
  gathered.shards_total = n;
  gathered.outcomes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    gathered.outcomes[i].shard = i;
    gathered.outcomes[i].outcome = "skipped";
  }

  std::vector<std::vector<ma::ScoredDoc>> partials(n);

  // Conflict-driven outer loop: a 409 from any shard means a generation
  // moved after phase 1; re-collect and re-broadcast. Bounded.
  for (size_t round = 0; round <= options_.max_stats_refreshes; ++round) {
    // ---- phase 1: pin whole-corpus statistics ----
    std::vector<uint64_t> bases;
    std::vector<uint64_t> generations;
    StatusOr<server::PinnedStats> pinned = CollectStats(
        terms, budget_ms > ElapsedMs(start) ? budget_ms - ElapsedMs(start) : 0,
        &bases, &generations);
    if (!pinned.ok()) {
      counters_.gathers_failed.fetch_add(1, std::memory_order_relaxed);
      return pinned.status();
    }
    gathered.stats_epoch = stats_epoch();
    const std::string gstats =
        server::UrlEncode(server::EncodePinnedStats(*pinned));

    // ---- phase 2: broadcast + gather ----
    const uint64_t elapsed = ElapsedMs(start);
    if (elapsed >= budget_ms) {
      counters_.gathers_failed.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("request budget exhausted before fan-out");
    }
    const uint64_t fan_budget = budget_ms - elapsed;

    std::atomic<bool> saw_conflict{false};
    common::ParallelFor(pool_.get(), 0, n, [&](size_t i) {
      ShardOutcome& outcome = gathered.outcomes[i];
      outcome = ShardOutcome();
      outcome.shard = i;
      const Clock::time_point shard_start = Clock::now();
      const std::string target =
          "/search?" + raw_search_params + "&k=" + std::to_string(k) +
          "&deadline_ms=" + std::to_string(fan_budget) +
          "&gstats=" + gstats +
          "&expect_gen=" + std::to_string(generations[i]);
      StatusOr<server::HttpClientResponse> reply =
          FanOne(i, target, fan_budget, &outcome);
      outcome.latency_ms =
          static_cast<double>(ElapsedMs(shard_start));
      partials[i].clear();
      if (!reply.ok()) {
        outcome.outcome = "failed";
        outcome.error = std::string(reply.status().message());
        return;
      }
      if (reply->status_code == 409) {
        counters_.gen_conflicts.fetch_add(1, std::memory_order_relaxed);
        saw_conflict.store(true, std::memory_order_release);
        outcome.outcome = "conflict";
        outcome.error = "generation moved after stats collection";
        return;
      }
      if (reply->status_code != 200) {
        outcome.outcome = "failed";
        outcome.error = "shard answered " +
                        std::to_string(reply->status_code) + ": " +
                        reply->body.substr(0, 160);
        return;
      }
      StatusOr<std::vector<ma::ScoredDoc>> parsed =
          ParseResultsFragment(reply->body);
      if (!parsed.ok()) {
        outcome.outcome = "failed";
        outcome.error = std::string(parsed.status().message());
        return;
      }
      // Local → global doc ids (contiguous split: global = base + local).
      for (ma::ScoredDoc& hit : *parsed) {
        hit.doc += static_cast<DocId>(bases[i]);
      }
      partials[i] = std::move(*parsed);
      outcome.outcome = "ok";
      outcome.results = partials[i].size();
    });

    if (saw_conflict.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        InvalidateStats();
      }
      if (round < options_.max_stats_refreshes &&
          ElapsedMs(start) < budget_ms) {
        continue;  // re-collect and re-broadcast
      }
      // Out of rounds/budget: conflicted shards count as failures below.
    }
    break;
  }

  // ---- merge + partial policy ----
  for (const ShardOutcome& outcome : gathered.outcomes) {
    if (outcome.outcome == "ok") ++gathered.shards_ok;
  }
  gathered.degraded = gathered.shards_ok != n;
  if (gathered.shards_ok == 0 ||
      (gathered.degraded && options_.partial_policy == PartialPolicy::kFail)) {
    counters_.gathers_failed.fetch_add(1, std::memory_order_relaxed);
    std::string detail;
    for (const ShardOutcome& outcome : gathered.outcomes) {
      if (outcome.outcome == "ok") continue;
      if (!detail.empty()) detail += "; ";
      detail += "shard " + std::to_string(outcome.shard) + ": " +
                (outcome.error.empty() ? outcome.outcome : outcome.error);
    }
    return Status::IOError(
        (gathered.shards_ok == 0 ? "every shard failed: "
                                 : "partial results forbidden by policy: ") +
        detail);
  }

  size_t total = 0;
  for (const auto& partial : partials) total += partial.size();
  gathered.results.reserve(total);
  for (auto& partial : partials) {
    gathered.results.insert(gathered.results.end(), partial.begin(),
                            partial.end());
  }
  std::sort(gathered.results.begin(), gathered.results.end(), ScoredBefore);
  if (gathered.results.size() > k) gathered.results.resize(k);

  if (gathered.degraded) {
    counters_.gathers_partial.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.gathers_ok.fetch_add(1, std::memory_order_relaxed);
  }
  return gathered;
}

}  // namespace graft::router
