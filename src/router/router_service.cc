#include "router/router_service.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "core/request.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"

namespace graft::router {

namespace {

using Clock = std::chrono::steady_clock;
using server::ErrorBody;
using server::HttpCodeForStatus;
using server::HttpRequest;
using server::JsonAppendEscaped;
using server::Response;

uint64_t MicrosSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

std::string RetryAfterHeader(unsigned seconds) {
  return "Retry-After: " + std::to_string(seconds) + "\r\n";
}

// Same FIN-before-close dance as SearchService's RejectConnection: the 503
// must survive the unread request bytes.
void RejectConnection(int fd, const std::string& body,
                      unsigned retry_after_s) {
  (void)server::WriteResponse(fd, 503, "application/json", body,
                              RetryAfterHeader(retry_after_s));
  ::shutdown(fd, SHUT_WR);
  char drain[1024];
  for (int spin = 0; spin < 50; ++spin) {
    const ssize_t n = ::recv(fd, drain, sizeof(drain), MSG_DONTWAIT);
    if (n == 0) break;
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(fd);
}

void AppendMsField(std::string* out, std::string_view name, double micros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%.3f",
                static_cast<int>(name.size()), name.data(), micros / 1000.0);
  *out += buf;
}

void AppendShardOutcomes(std::string* out,
                         const std::vector<ShardOutcome>& outcomes) {
  *out += "\"shards\":[";
  bool first = true;
  for (const ShardOutcome& shard : outcomes) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"shard\":" + std::to_string(shard.shard);
    *out += ",\"port\":" + std::to_string(shard.port);
    *out += ",\"outcome\":\"";
    JsonAppendEscaped(out, shard.outcome);
    *out += "\",\"attempts\":" + std::to_string(shard.attempts);
    *out += ",\"hedged\":";
    *out += shard.hedged ? "true" : "false";
    *out += ",\"results\":" + std::to_string(shard.results);
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"latency_ms\":%.3f",
                  shard.latency_ms);
    *out += buf;
    if (!shard.error.empty()) {
      *out += ",\"error\":\"";
      JsonAppendEscaped(out, shard.error);
      *out += "\"";
    }
    *out += "}";
  }
  *out += "]";
}

void AppendCounterMetric(std::string* out, std::string_view name,
                         std::string_view help, uint64_t value) {
  *out += "# HELP ";
  *out += name;
  *out += " ";
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " counter\n";
  *out += name;
  *out += " " + std::to_string(value) + "\n";
}

}  // namespace

void RouterStats::RecordResponseCode(int status_code) {
  if (status_code >= 200 && status_code < 300) {
    responses_ok.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code == 503) {
    rejected_overload.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code == 504) {
    deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code == 502) {
    bad_gateway.fetch_add(1, std::memory_order_relaxed);
  } else if (status_code >= 400 && status_code < 500) {
    client_errors.fetch_add(1, std::memory_order_relaxed);
  } else {
    bad_gateway.fetch_add(1, std::memory_order_relaxed);
  }
}

RouterService::RouterService(
    std::vector<std::vector<uint16_t>> shard_replicas, RouterOptions options)
    : options_(std::move(options)),
      gather_(std::make_unique<ScatterGather>(std::move(shard_replicas),
                                              options_.gather)) {}

RouterService::~RouterService() { Shutdown(); }

Status RouterService::Start() {
  if (started_) {
    return Status::FailedPrecondition("router already started");
  }
  GRAFT_RETURN_IF_ERROR(listener_.Bind(options_.port));
  pool_ = std::make_unique<common::ThreadPool>(options_.handler_threads);
  started_at_ = Clock::now();
  started_ = true;
  gather_->StartProbes();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void RouterService::Shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  pool_.reset();
  gather_->StopProbes();
  started_ = false;
}

void RouterService::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    StatusOr<int> accepted = listener_.Accept(options_.io_timeout_ms);
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int fd = *accepted;
    stats_.requests_total.fetch_add(1, std::memory_order_relaxed);

    const size_t inflight =
        inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (inflight > options_.max_inflight ||
        stopping_.load(std::memory_order_acquire)) {
      const Status reason =
          inflight > options_.max_inflight
              ? Status::FailedPrecondition("router overloaded; retry")
              : Status::FailedPrecondition("router shutting down");
      RejectConnection(fd, ErrorBody(reason), options_.retry_after_s);
      stats_.RecordResponseCode(503);
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drain_cv_.notify_all();
      }
      continue;
    }

    const Clock::time_point admitted = Clock::now();
    pool_->Submit([this, fd, admitted] { HandleConnection(fd, admitted); });
  }
}

void RouterService::HandleConnection(int fd, Clock::time_point admitted) {
  const uint64_t queued_micros = MicrosSince(admitted);
  StatusOr<HttpRequest> request = server::ReadRequest(fd);
  Response response;
  if (!request.ok()) {
    stats_.malformed_requests.fetch_add(1, std::memory_order_relaxed);
    response.status_code = 400;
    response.body = ErrorBody(request.status());
  } else {
    response = Handle(*request, queued_micros);
  }
  const std::string extra_headers =
      response.retry_after_s > 0 ? RetryAfterHeader(response.retry_after_s)
                                 : std::string();
  // Count before writing: a client that has read the response (and then
  // /stats) must already see it reflected in the counters.
  stats_.RecordResponseCode(response.status_code);
  (void)server::WriteResponse(fd, response.status_code, response.content_type,
                              response.body, extra_headers);
  ::close(fd);
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

Response RouterService::Handle(const HttpRequest& request,
                               uint64_t queued_micros) {
  Response response;
  if (request.method != "GET") {
    response.status_code = 405;
    response.body =
        ErrorBody(Status::InvalidArgument("only GET is supported"));
    return response;
  }
  if (request.path == "/healthz") return HandleHealthz();
  if (request.path == "/stats") return HandleStats();
  if (request.path == "/metrics") return HandleMetrics();
  if (request.path == "/search") return HandleSearch(request, queued_micros);
  response.status_code = 404;
  response.body =
      ErrorBody(Status::NotFound("no such endpoint: " + request.path));
  return response;
}

Response RouterService::HandleSearch(const HttpRequest& request,
                                     uint64_t queued_micros) {
  const Clock::time_point handle_start = Clock::now();
  Response response;
  const auto record_latency = [&] {
    stats_.search_latency.Record(queued_micros + MicrosSince(handle_start));
  };

  // ---- parameter parsing (every failure is a 4xx) ----
  const auto get = [&request](const char* name) -> const std::string* {
    const auto it = request.params.find(name);
    return it == request.params.end() ? nullptr : &it->second;
  };
  const std::string* q = get("q");
  if (q == nullptr) {
    response.status_code = 400;
    response.body =
        ErrorBody(Status::InvalidArgument("missing required parameter: q"));
    record_latency();
    return response;
  }
  std::string scheme = "MeanSum";
  if (const std::string* text = get("scheme")) scheme = *text;
  size_t k = options_.default_top_k;
  if (const std::string* text = get("k")) {
    StatusOr<size_t> value = core::ParseCount(*text, "k");
    if (!value.ok()) {
      response.status_code = HttpCodeForStatus(value.status());
      response.body = ErrorBody(value.status());
      record_latency();
      return response;
    }
    k = *value;
  }
  if (k == 0 || k > options_.max_top_k) {
    response.status_code = 400;
    response.body = ErrorBody(Status::InvalidArgument(
        "k must be in [1, " + std::to_string(options_.max_top_k) +
        "] (distributed search cannot return unbounded result sets)"));
    record_latency();
    return response;
  }
  uint64_t deadline_ms = options_.default_deadline_ms;
  if (const std::string* text = get("deadline_ms")) {
    StatusOr<size_t> value = core::ParseCount(*text, "deadline_ms");
    if (!value.ok() || *value == 0) {
      const Status status =
          value.ok() ? Status::InvalidArgument("deadline_ms must be > 0")
                     : value.status();
      response.status_code = HttpCodeForStatus(status);
      response.body = ErrorBody(status);
      record_latency();
      return response;
    }
    deadline_ms = std::min<uint64_t>(*value, options_.max_deadline_ms);
  }
  bool explain = false;
  if (const std::string* text = get("explain")) {
    explain = *text == "1" || *text == "true";
  }

  // The router validates the query and scheme itself (same parser and
  // registry as the shards), so malformed input burns zero shard budget
  // and the term list for the stats exchange falls out of the parse.
  StatusOr<mcalc::Query> parsed = mcalc::ParseQuery(*q);
  if (!parsed.ok()) {
    response.status_code = HttpCodeForStatus(parsed.status());
    response.body = ErrorBody(parsed.status());
    record_latency();
    return response;
  }
  if (sa::SchemeRegistry::Global().Lookup(scheme) == nullptr) {
    response.status_code = 404;
    response.body =
        ErrorBody(Status::NotFound("unknown scoring scheme: " + scheme));
    record_latency();
    return response;
  }
  std::vector<std::string> terms;
  terms.reserve(parsed->variables.size());
  for (const mcalc::Variable& variable : parsed->variables) {
    terms.push_back(variable.keyword);
  }

  stats_.scheme_counts.Record(scheme);

  // ---- fan out ----
  const uint64_t spent_ms =
      (queued_micros + MicrosSince(handle_start)) / 1000;
  if (spent_ms >= deadline_ms) {
    response.status_code = 504;
    response.retry_after_s = options_.retry_after_s;
    response.body = ErrorBody(Status::FailedPrecondition(
        "deadline of " + std::to_string(deadline_ms) +
        "ms elapsed before fan-out"));
    record_latency();
    return response;
  }
  const std::string tail = "q=" + server::UrlEncode(*q) +
                           "&scheme=" + server::UrlEncode(scheme);
  StatusOr<GatherResult> gathered =
      gather_->Search(terms, tail, k, deadline_ms - spent_ms);
  if (!gathered.ok()) {
    // A client mistake stays 4xx; everything else is the gateway speaking
    // for unreachable/failed shards.
    const int mapped = HttpCodeForStatus(gathered.status());
    response.status_code = mapped == 400 || mapped == 404 ? mapped : 502;
    response.body = ErrorBody(gathered.status());
    record_latency();
    return response;
  }
  if ((queued_micros + MicrosSince(handle_start)) / 1000 >= deadline_ms) {
    response.status_code = 504;
    response.retry_after_s = options_.retry_after_s;
    response.body = ErrorBody(Status::FailedPrecondition(
        "deadline of " + std::to_string(deadline_ms) +
        "ms exceeded during fan-out"));
    record_latency();
    return response;
  }

  if (gathered->degraded) {
    stats_.partial_responses.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- 200 body: the degradation contract is always present ----
  std::string body = "{\"query\":\"";
  JsonAppendEscaped(&body, *q);
  body += "\",\"scheme\":\"";
  JsonAppendEscaped(&body, scheme);
  body += "\",\"k\":" + std::to_string(k);
  body += ",\"degraded\":";
  body += gathered->degraded ? "true" : "false";
  body += ",\"shards_total\":" + std::to_string(gathered->shards_total);
  body += ",\"shards_ok\":" + std::to_string(gathered->shards_ok);
  body += ",";
  AppendShardOutcomes(&body, gathered->outcomes);
  body += ",\"timings\":{";
  AppendMsField(&body, "queue_ms", static_cast<double>(queued_micros));
  body += ",";
  AppendMsField(&body, "total_ms",
                static_cast<double>(queued_micros +
                                    MicrosSince(handle_start)));
  body += "},";
  if (explain) {
    body += "\"explain\":{\"stats_epoch\":";
    body += std::to_string(gathered->stats_epoch);
    body += ",\"terms\":[";
    bool first = true;
    for (const std::string& term : terms) {
      if (!first) body += ",";
      first = false;
      body += "\"";
      JsonAppendEscaped(&body, term);
      body += "\"";
    }
    body += "],\"policy\":\"";
    body += options_.gather.partial_policy == PartialPolicy::kFail
                ? "fail"
                : "partial";
    body += "\",\"hedge_ms\":";
    body += std::to_string(options_.gather.hedge_ms);
    body += "},";
  }
  body += server::SearchService::FormatResultsFragment(gathered->results);
  body += "}";
  response.body = std::move(body);
  record_latency();
  return response;
}

Response RouterService::HandleHealthz() const {
  // The router is healthy while it can still reach some of the corpus;
  // per-shard replica health is the detail a prober wants next.
  size_t dark_shards = 0;
  std::string shard_list = "[";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    const ShardClient& shard = gather_->shard(i);
    if (!shard.any_healthy()) ++dark_shards;
    if (i > 0) shard_list += ",";
    shard_list += "{\"shard\":" + std::to_string(i) +
                  ",\"replicas\":" + std::to_string(shard.replica_count()) +
                  ",\"healthy\":" + std::to_string(shard.healthy_count()) +
                  "}";
  }
  shard_list += "]";
  Response response;
  response.body = "{\"status\":\"";
  response.body += dark_shards == 0
                       ? "ok"
                       : (dark_shards < gather_->shard_count() ? "degraded"
                                                               : "down");
  response.body += "\",\"shards\":" + shard_list + "}";
  return response;
}

Response RouterService::HandleStats() const {
  const GatherCounters& gather = gather_->counters();
  Response response;
  std::string body = "{\"requests_total\":";
  body += std::to_string(stats_.requests_total.load(std::memory_order_relaxed));
  body += ",\"responses_ok\":";
  body += std::to_string(stats_.responses_ok.load(std::memory_order_relaxed));
  body += ",\"client_errors\":";
  body += std::to_string(stats_.client_errors.load(std::memory_order_relaxed));
  body += ",\"bad_gateway\":";
  body += std::to_string(stats_.bad_gateway.load(std::memory_order_relaxed));
  body += ",\"rejected_overload\":";
  body += std::to_string(
      stats_.rejected_overload.load(std::memory_order_relaxed));
  body += ",\"deadline_exceeded\":";
  body += std::to_string(
      stats_.deadline_exceeded.load(std::memory_order_relaxed));
  body += ",\"malformed_requests\":";
  body += std::to_string(
      stats_.malformed_requests.load(std::memory_order_relaxed));
  body += ",\"partial_responses\":";
  body += std::to_string(
      stats_.partial_responses.load(std::memory_order_relaxed));
  body += ",\"gathers\":{\"total\":";
  body += std::to_string(gather.gathers_total.load(std::memory_order_relaxed));
  body += ",\"ok\":";
  body += std::to_string(gather.gathers_ok.load(std::memory_order_relaxed));
  body += ",\"partial\":";
  body +=
      std::to_string(gather.gathers_partial.load(std::memory_order_relaxed));
  body += ",\"failed\":";
  body += std::to_string(gather.gathers_failed.load(std::memory_order_relaxed));
  body += ",\"hedges_launched\":";
  body +=
      std::to_string(gather.hedges_launched.load(std::memory_order_relaxed));
  body += ",\"hedges_won\":";
  body += std::to_string(gather.hedges_won.load(std::memory_order_relaxed));
  body += ",\"stats_refreshes\":";
  body +=
      std::to_string(gather.stats_refreshes.load(std::memory_order_relaxed));
  body += ",\"gen_conflicts\":";
  body += std::to_string(gather.gen_conflicts.load(std::memory_order_relaxed));
  body += "},\"stats_epoch\":";
  body += std::to_string(gather_->stats_epoch());
  body += ",\"shards\":[";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    const ShardClient& shard = gather_->shard(i);
    const ShardClientCounters& counters = shard.counters();
    if (i > 0) body += ",";
    body += "{\"shard\":" + std::to_string(i);
    body += ",\"replicas\":" + std::to_string(shard.replica_count());
    body += ",\"healthy\":" + std::to_string(shard.healthy_count());
    body += ",\"attempts\":" +
            std::to_string(counters.attempts.load(std::memory_order_relaxed));
    body += ",\"failures\":" +
            std::to_string(counters.failures.load(std::memory_order_relaxed));
    body += ",\"retries\":" +
            std::to_string(counters.retries.load(std::memory_order_relaxed));
    body += ",\"ejections\":" +
            std::to_string(counters.ejections.load(std::memory_order_relaxed));
    body += ",\"readmissions\":" + std::to_string(counters.readmissions.load(
                                       std::memory_order_relaxed));
    body += ",\"probes\":" +
            std::to_string(counters.probes.load(std::memory_order_relaxed));
    body += "}";
  }
  body += "],\"search_latency\":";
  body += stats_.search_latency.ToJson();
  body += ",\"by_scheme\":";
  body += stats_.scheme_counts.ToJson();
  body += ",\"uptime_s\":";
  body += std::to_string(MicrosSince(started_at_) / 1000000);
  body += "}";
  response.body = std::move(body);
  return response;
}

Response RouterService::HandleMetrics() const {
  const GatherCounters& gather = gather_->counters();
  Response response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  AppendCounterMetric(&body, "graft_router_requests_total",
                      "Connections accepted by the router.",
                      stats_.requests_total.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_responses_ok_total",
                      "2xx responses (including degraded partials).",
                      stats_.responses_ok.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_client_errors_total",
                      "4xx responses.",
                      stats_.client_errors.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_bad_gateway_total",
                      "502s: shard failures the policy would not degrade.",
                      stats_.bad_gateway.load(std::memory_order_relaxed));
  AppendCounterMetric(
      &body, "graft_router_rejected_overload_total",
      "503s from the admission cap or shutdown.",
      stats_.rejected_overload.load(std::memory_order_relaxed));
  AppendCounterMetric(
      &body, "graft_router_deadline_exceeded_total", "504s.",
      stats_.deadline_exceeded.load(std::memory_order_relaxed));
  AppendCounterMetric(
      &body, "graft_router_partial_responses_total",
      "Degraded 200s: some shard did not contribute.",
      stats_.partial_responses.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_gathers_total",
                      "Scatter-gather rounds started.",
                      gather.gathers_total.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_gathers_partial_total",
                      "Gathers merged from a strict subset of shards.",
                      gather.gathers_partial.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_gathers_failed_total",
                      "Gathers that returned an error to the caller.",
                      gather.gathers_failed.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_hedges_launched_total",
                      "Hedged second requests sent to straggler shards.",
                      gather.hedges_launched.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_hedges_won_total",
                      "Hedged requests that beat the primary.",
                      gather.hedges_won.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_stats_refreshes_total",
                      "Stats-epoch invalidations (generation moved).",
                      gather.stats_refreshes.load(std::memory_order_relaxed));
  AppendCounterMetric(&body, "graft_router_gen_conflicts_total",
                      "409 Conflict replies observed from shards.",
                      gather.gen_conflicts.load(std::memory_order_relaxed));

  body += "# HELP graft_router_stats_epoch Current pinned-stats epoch.\n";
  body += "# TYPE graft_router_stats_epoch gauge\n";
  body += "graft_router_stats_epoch " +
          std::to_string(gather_->stats_epoch()) + "\n";

  // Per-shard wire counters + health gauges, labeled by shard index.
  body +=
      "# HELP graft_router_shard_attempts_total Wire attempts per shard.\n";
  body += "# TYPE graft_router_shard_attempts_total counter\n";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    body += "graft_router_shard_attempts_total{shard=\"" +
            std::to_string(i) + "\"} " +
            std::to_string(gather_->shard(i).counters().attempts.load(
                std::memory_order_relaxed)) +
            "\n";
  }
  body += "# HELP graft_router_shard_failures_total Failed attempts "
          "(transport or 5xx) per shard.\n";
  body += "# TYPE graft_router_shard_failures_total counter\n";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    body += "graft_router_shard_failures_total{shard=\"" +
            std::to_string(i) + "\"} " +
            std::to_string(gather_->shard(i).counters().failures.load(
                std::memory_order_relaxed)) +
            "\n";
  }
  body += "# HELP graft_router_shard_ejections_total Replica ejections "
          "per shard.\n";
  body += "# TYPE graft_router_shard_ejections_total counter\n";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    body += "graft_router_shard_ejections_total{shard=\"" +
            std::to_string(i) + "\"} " +
            std::to_string(gather_->shard(i).counters().ejections.load(
                std::memory_order_relaxed)) +
            "\n";
  }
  body += "# HELP graft_router_shard_readmissions_total Probe-driven "
          "replica readmissions per shard.\n";
  body += "# TYPE graft_router_shard_readmissions_total counter\n";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    body += "graft_router_shard_readmissions_total{shard=\"" +
            std::to_string(i) + "\"} " +
            std::to_string(gather_->shard(i).counters().readmissions.load(
                std::memory_order_relaxed)) +
            "\n";
  }
  body += "# HELP graft_router_shard_healthy_replicas Non-ejected "
          "replicas per shard.\n";
  body += "# TYPE graft_router_shard_healthy_replicas gauge\n";
  for (size_t i = 0; i < gather_->shard_count(); ++i) {
    body += "graft_router_shard_healthy_replicas{shard=\"" +
            std::to_string(i) + "\"} " +
            std::to_string(gather_->shard(i).healthy_count()) + "\n";
  }

  // Latency summary, matching the server's exposition shape.
  body += "# HELP graft_router_search_latency_seconds /search latency.\n";
  body += "# TYPE graft_router_search_latency_seconds summary\n";
  const struct {
    const char* label;
    double q;
  } quantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  char buf[128];
  for (const auto& quantile : quantiles) {
    std::snprintf(
        buf, sizeof(buf),
        "graft_router_search_latency_seconds{quantile=\"%s\"} %.6f\n",
        quantile.label,
        stats_.search_latency.PercentileMicros(quantile.q) / 1e6);
    body += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "graft_router_search_latency_seconds_sum %.6f\n",
                static_cast<double>(stats_.search_latency.sum_micros()) / 1e6);
  body += buf;
  body += "graft_router_search_latency_seconds_count " +
          std::to_string(stats_.search_latency.count()) + "\n";

  body += "# HELP graft_router_uptime_seconds Seconds since Start().\n";
  body += "# TYPE graft_router_uptime_seconds gauge\n";
  body += "graft_router_uptime_seconds " +
          std::to_string(MicrosSince(started_at_) / 1000000) + "\n";
  response.body = std::move(body);
  return response;
}

}  // namespace graft::router
