// Fault-tolerant HTTP client for one shard of a scatter-gather topology.
//
// A shard is served by one or more replica processes (graft_server
// instances over the same index partition). ShardClient owns the replica
// health state and the retry discipline:
//
//   * replica selection is round-robin over non-ejected replicas, so load
//     spreads and a single bad replica cannot absorb every attempt;
//   * a replica is EJECTED after `eject_after` consecutive failures; an
//     ejected replica takes no traffic until a background health probe
//     (ProbeEjected, driven by the ScatterGather probe thread) sees its
//     /healthz answer 200 again and readmits it;
//   * Get() makes up to `max_attempts` attempts, rotating replicas, with
//     exponential backoff + decorrelated jitter between attempts — all
//     bounded by the caller's remaining deadline budget: the client never
//     spends more wall clock than the request has left;
//   * an HTTP 5xx/503/504 reply and a transport error both count as
//     attempt failures; 2xx and 4xx (including 409) are returned to the
//     caller — a 4xx is the shard speaking, not the path failing, and
//     retrying it would duplicate a deterministic answer.
//
// Failpoints (compiled under GRAFT_FAILPOINTS_ENABLED) let the chaos tests
// strike each distinct wire failure mode:
//
//   router.client.connect       attempt fails as if connect() failed
//   router.client.slow_reply    attempt sleeps (delay action) before I/O,
//                               simulating a straggler replica
//   router.client.garbled_body  the reply body is bit-scrambled, as if
//                               corrupted on the wire — the caller's parser
//                               must reject it
//   router.client.cut_body      the reply body is cut mid-stream (first
//                               half only), as if the peer died mid-send
//
// Thread-safe: concurrent Get() calls (fan-out + hedges) share the health
// state through atomics; no locks on the request path.

#ifndef GRAFT_ROUTER_SHARD_CLIENT_H_
#define GRAFT_ROUTER_SHARD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "server/http.h"

namespace graft::router {

struct ShardClientOptions {
  // Total attempts per Get() across replicas (1 = no retries).
  size_t max_attempts = 3;
  // Exponential backoff between attempts: base * 2^attempt, capped, with
  // full jitter (uniform in [backoff/2, backoff]). Bounded additionally by
  // the remaining deadline.
  uint64_t backoff_base_ms = 5;
  uint64_t backoff_max_ms = 100;
  // Consecutive failures that eject a replica from rotation.
  uint32_t eject_after = 3;
  // Per-attempt socket timeout cap; each attempt's timeout is
  // min(io_timeout_ms, remaining budget).
  int io_timeout_ms = 5000;
};

// Cumulative per-shard wire counters (relaxed atomics; read by /metrics).
struct ShardClientCounters {
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> failures{0};      // failed attempts (transport/5xx)
  std::atomic<uint64_t> retries{0};       // attempts after the first
  std::atomic<uint64_t> ejections{0};
  std::atomic<uint64_t> readmissions{0};
  std::atomic<uint64_t> probes{0};        // health probes sent
};

class ShardClient {
 public:
  // `replica_ports` must be non-empty; `seed` decorrelates the jitter
  // streams of different shards deterministically (tests pass fixed
  // seeds).
  ShardClient(size_t shard_id, std::vector<uint16_t> replica_ports,
              ShardClientOptions options, uint64_t seed);

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // One logical GET with retries/failover, spending at most `budget_ms`.
  // Returns the first 2xx/4xx reply, or the last failure when every
  // attempt (or the budget) is exhausted. `attempts_out`, when non-null,
  // receives the number of attempts consumed (per-shard outcome
  // reporting).
  StatusOr<server::HttpClientResponse> Get(const std::string& target,
                                           uint64_t budget_ms,
                                           size_t* attempts_out = nullptr,
                                           uint16_t* port_out = nullptr);

  // A single attempt against the next replica in rotation, no retries and
  // no backoff — the hedge leg of a hedged request, and the building block
  // Get() loops over.
  StatusOr<server::HttpClientResponse> GetOnce(const std::string& target,
                                               uint64_t budget_ms,
                                               uint16_t* port_out = nullptr);

  // Probes every ejected replica's /healthz once; readmits on 200. Called
  // by the ScatterGather background probe thread.
  void ProbeEjected();

  size_t shard_id() const { return shard_id_; }
  size_t replica_count() const { return replicas_.size(); }
  size_t healthy_count() const;
  bool any_healthy() const { return healthy_count() > 0; }
  uint16_t replica_port(size_t i) const { return replicas_[i]->port; }
  bool replica_ejected(size_t i) const {
    return replicas_[i]->ejected.load(std::memory_order_acquire);
  }

  const ShardClientCounters& counters() const { return counters_; }

 private:
  struct ReplicaState {
    uint16_t port = 0;
    std::atomic<uint32_t> consecutive_failures{0};
    std::atomic<bool> ejected{false};
  };

  // Picks the next non-ejected replica (round-robin); falls back to any
  // replica when all are ejected — a fully dark shard still gets one
  // last-resort attempt, which doubles as an inline readmission chance.
  ReplicaState* PickReplica();

  void RecordSuccess(ReplicaState* replica);
  void RecordFailure(ReplicaState* replica);

  // Deterministic per-client jitter stream (xorshift); thread-safe via CAS.
  uint64_t NextJitter(uint64_t range);

  const size_t shard_id_;
  const ShardClientOptions options_;
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
  std::atomic<size_t> rotation_{0};
  std::atomic<uint64_t> jitter_state_;
  ShardClientCounters counters_;
};

}  // namespace graft::router

#endif  // GRAFT_ROUTER_SHARD_CLIENT_H_
