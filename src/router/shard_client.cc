#include "router/shard_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"

namespace graft::router {

namespace {

using Clock = std::chrono::steady_clock;

// The four wire failure modes the chaos tests strike (header comment).
GRAFT_DEFINE_FAILPOINT(g_fp_connect, "router.client.connect");
GRAFT_DEFINE_FAILPOINT(g_fp_slow_reply, "router.client.slow_reply");
GRAFT_DEFINE_FAILPOINT(g_fp_garbled_body, "router.client.garbled_body");
GRAFT_DEFINE_FAILPOINT(g_fp_cut_body, "router.client.cut_body");

uint64_t ElapsedMs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count());
}

// A failed attempt is a transport error or a reply that says "the path
// failed, try elsewhere" (5xx, incl. overload/timeout). 2xx and 4xx are
// answers: retrying a deterministic 400/404/409 would only duplicate it.
bool IsRetryableReply(const server::HttpClientResponse& response) {
  return response.status_code >= 500;
}

}  // namespace

ShardClient::ShardClient(size_t shard_id, std::vector<uint16_t> replica_ports,
                         ShardClientOptions options, uint64_t seed)
    : shard_id_(shard_id),
      options_(options),
      // Seed must never be zero (xorshift fixed point); fold in the shard
      // id so equal seeds still decorrelate across shards.
      jitter_state_((seed ^ (shard_id * 0x9E3779B97F4A7C15ull)) | 1) {
  replicas_.reserve(replica_ports.size());
  for (const uint16_t port : replica_ports) {
    auto replica = std::make_unique<ReplicaState>();
    replica->port = port;
    replicas_.push_back(std::move(replica));
  }
}

size_t ShardClient::healthy_count() const {
  size_t healthy = 0;
  for (const auto& replica : replicas_) {
    if (!replica->ejected.load(std::memory_order_acquire)) ++healthy;
  }
  return healthy;
}

ShardClient::ReplicaState* ShardClient::PickReplica() {
  const size_t n = replicas_.size();
  const size_t start = rotation_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    ReplicaState* replica = replicas_[(start + i) % n].get();
    if (!replica->ejected.load(std::memory_order_acquire)) return replica;
  }
  return replicas_[start % n].get();
}

void ShardClient::RecordSuccess(ReplicaState* replica) {
  replica->consecutive_failures.store(0, std::memory_order_release);
  if (replica->ejected.exchange(false, std::memory_order_acq_rel)) {
    counters_.readmissions.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardClient::RecordFailure(ReplicaState* replica) {
  counters_.failures.fetch_add(1, std::memory_order_relaxed);
  const uint32_t failures =
      replica->consecutive_failures.fetch_add(1, std::memory_order_acq_rel) +
      1;
  if (failures >= options_.eject_after &&
      !replica->ejected.exchange(true, std::memory_order_acq_rel)) {
    counters_.ejections.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t ShardClient::NextJitter(uint64_t range) {
  if (range == 0) return 0;
  uint64_t state = jitter_state_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = state;
    next ^= next << 13;
    next ^= next >> 7;
    next ^= next << 17;
  } while (!jitter_state_.compare_exchange_weak(state, next,
                                                std::memory_order_relaxed));
  return next % range;
}

StatusOr<server::HttpClientResponse> ShardClient::GetOnce(
    const std::string& target, uint64_t budget_ms, uint16_t* port_out) {
  counters_.attempts.fetch_add(1, std::memory_order_relaxed);
  ReplicaState* replica = PickReplica();
  if (port_out != nullptr) *port_out = replica->port;

#ifdef GRAFT_FAILPOINTS_ENABLED
  {
    // Injected connect failure: the attempt dies before any I/O.
    const Status injected = g_fp_connect.Check();
    if (!injected.ok()) {
      RecordFailure(replica);
      return injected;
    }
    // Straggler injection: a delay-action failpoint sleeps inside Check().
    (void)g_fp_slow_reply.Check();
  }
#endif

  const int timeout_ms = static_cast<int>(std::min<uint64_t>(
      budget_ms == 0 ? 1 : budget_ms,
      static_cast<uint64_t>(options_.io_timeout_ms)));
  StatusOr<server::HttpClientResponse> response =
      server::HttpGet(replica->port, target, timeout_ms);
  if (!response.ok()) {
    RecordFailure(replica);
    return response;
  }

#ifdef GRAFT_FAILPOINTS_ENABLED
  if (!g_fp_garbled_body.Check().ok()) {
    // Wire corruption: scramble the body bytes; the caller's parser must
    // refuse the result rather than merge garbage.
    for (char& c : response->body) c = static_cast<char>(~c);
  }
  if (!g_fp_cut_body.Check().ok()) {
    // Mid-stream cut: only the first half of the body arrived.
    response->body.resize(response->body.size() / 2);
  }
#endif

  if (IsRetryableReply(*response)) {
    RecordFailure(replica);
  } else {
    RecordSuccess(replica);
  }
  return response;
}

StatusOr<server::HttpClientResponse> ShardClient::Get(
    const std::string& target, uint64_t budget_ms, size_t* attempts_out,
    uint16_t* port_out) {
  const Clock::time_point start = Clock::now();
  StatusOr<server::HttpClientResponse> last =
      Status::IOError("shard " + std::to_string(shard_id_) +
                      ": no attempt made (budget exhausted)");
  size_t attempts = 0;
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const uint64_t elapsed = ElapsedMs(start);
    if (elapsed >= budget_ms) break;
    if (attempt > 0) {
      counters_.retries.fetch_add(1, std::memory_order_relaxed);
      // Exponential backoff with full jitter in [backoff/2, backoff],
      // never sleeping past the remaining budget.
      const uint64_t backoff = std::min(
          options_.backoff_max_ms, options_.backoff_base_ms << (attempt - 1));
      const uint64_t jittered = backoff / 2 + NextJitter(backoff / 2 + 1);
      const uint64_t remaining = budget_ms - elapsed;
      const uint64_t sleep_ms = std::min(jittered, remaining);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      if (ElapsedMs(start) >= budget_ms) break;
    }
    ++attempts;
    last = GetOnce(target, budget_ms - ElapsedMs(start), port_out);
    if (last.ok() && !IsRetryableReply(*last)) break;
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return last;
}

void ShardClient::ProbeEjected() {
  for (const auto& replica : replicas_) {
    if (!replica->ejected.load(std::memory_order_acquire)) continue;
    counters_.probes.fetch_add(1, std::memory_order_relaxed);
    StatusOr<server::HttpClientResponse> probe =
        server::HttpGet(replica->port, "/healthz", options_.io_timeout_ms);
    if (probe.ok() && probe->status_code == 200) {
      RecordSuccess(replica.get());
    }
  }
}

}  // namespace graft::router
