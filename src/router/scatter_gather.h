// Score-consistent scatter-gather over N GRAFT shard servers.
//
// The distributed analogue of Engine's segmented path (DESIGN.md §2b): the
// corpus is partitioned contiguously across shards in shard order (shard
// i's documents come before shard i+1's, exactly like segments of a
// SegmentedIndex), each shard server holds an independently built index
// over its slice, and the router reproduces the single-process ranking:
//
//   phase 1 (collect)   GET /shard/stats?terms=... on every shard; sum
//                       doc_count / total_words / per-term df+cf into the
//                       whole-corpus statistics, and record each shard's
//                       engine generation and doc base (prefix sums of the
//                       shard doc counts — global doc id = base + local).
//   phase 2 (broadcast) GET /search?...&gstats=<pinned>&expect_gen=<g> on
//                       every shard in parallel; each shard scores its
//                       local top-k against the pinned global statistics,
//                       so per-document scores are bit-identical to a
//                       single-process run (GRAFT scores = f(match rows,
//                       collection stats)).
//   merge               k-way merge by (score desc, global doc asc) — the
//                       same ScoredBefore order Engine::MergeRanked uses.
//
// The stats-epoch protocol: phase-1 results are cached under a
// monotonically increasing epoch. The cached per-shard generation vector
// is the epoch's validity condition — a shard answering 409 Conflict (its
// generation moved, e.g. a hot reload) or a /shard/stats reply with a new
// generation invalidates the epoch, flushes the term cache, and the
// request re-collects before retrying, so merged rankings never mix
// statistics from different index generations. Terms missing from the
// cache are fetched on demand and folded in under the same epoch.
//
// Robustness (the ISSUE 8 headline):
//   * per-shard deadline = the request's remaining budget; every retry,
//     backoff sleep, and hedge fits inside it (ShardClient enforces);
//   * bounded retries + exponential backoff + jitter per shard
//     (ShardClient), rotating over replicas, with ejection + background
//     readmission probes (StartProbes);
//   * optional hedging: when a shard has not answered after hedge_ms and
//     has a spare healthy replica, a second identical request races the
//     first; the winner's reply is used, the loser is abandoned;
//   * partial-result policy: kFail turns any shard failure into an error
//     (no silent truncation); kPartial merges the shards that answered and
//     marks the result degraded with per-shard outcomes + coverage — the
//     response never pretends to be complete.

#ifndef GRAFT_ROUTER_SCATTER_GATHER_H_
#define GRAFT_ROUTER_SCATTER_GATHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ma/match_table.h"
#include "router/shard_client.h"
#include "server/pinned_stats.h"

namespace graft::router {

enum class PartialPolicy {
  kFail,     // any shard failure fails the whole request
  kPartial,  // merge what answered; mark degraded + per-shard outcomes
};

struct ScatterGatherOptions {
  ShardClientOptions client;
  PartialPolicy partial_policy = PartialPolicy::kPartial;
  // 0 disables hedging; otherwise a straggler shard gets a second racing
  // request after this many milliseconds (if a healthy replica remains).
  uint64_t hedge_ms = 0;
  // Bound on (re-)collect rounds when generations move mid-request: the
  // first round plus this many conflict-driven refreshes.
  size_t max_stats_refreshes = 2;
  // Background readmission probe cadence (StartProbes).
  uint64_t probe_interval_ms = 200;
  // Fan-out worker threads (0 = one per shard).
  size_t fanout_threads = 0;
  // Deterministic jitter seed for the shard clients.
  uint64_t jitter_seed = 0x5bd1e995u;
};

// One shard's outcome within one gathered search — surfaced verbatim in
// the response JSON, EXPLAIN, and aggregated into /metrics.
struct ShardOutcome {
  size_t shard = 0;
  uint16_t port = 0;        // replica that produced the final verdict
  std::string outcome;      // "ok" | "failed" | "conflict" | "skipped"
  std::string error;        // failure detail ("" when ok)
  size_t attempts = 0;      // attempts consumed (incl. hedge leg)
  bool hedged = false;      // a hedge leg was launched
  size_t results = 0;       // hits contributed before the merge
  double latency_ms = 0.0;
};

struct GatherResult {
  std::vector<ma::ScoredDoc> results;  // global doc ids, merged order
  bool degraded = false;               // some shard did not contribute
  size_t shards_total = 0;
  size_t shards_ok = 0;
  uint64_t stats_epoch = 0;
  std::vector<ShardOutcome> outcomes;  // one per shard, in shard order
};

// Cumulative router-side counters (relaxed atomics; /metrics).
struct GatherCounters {
  std::atomic<uint64_t> gathers_total{0};
  std::atomic<uint64_t> gathers_ok{0};        // all shards contributed
  std::atomic<uint64_t> gathers_partial{0};   // degraded 200s (kPartial)
  std::atomic<uint64_t> gathers_failed{0};    // error returned to caller
  std::atomic<uint64_t> hedges_launched{0};
  std::atomic<uint64_t> hedges_won{0};        // hedge leg answered first
  std::atomic<uint64_t> stats_refreshes{0};   // epoch invalidations
  std::atomic<uint64_t> gen_conflicts{0};     // 409s observed from shards
};

class ScatterGather {
 public:
  // `shard_replicas[i]` lists the replica ports of shard i (>= 1 each).
  // Shard order defines the global doc-id order (contiguous corpus split).
  ScatterGather(std::vector<std::vector<uint16_t>> shard_replicas,
                ScatterGatherOptions options);
  ~ScatterGather();

  ScatterGather(const ScatterGather&) = delete;
  ScatterGather& operator=(const ScatterGather&) = delete;

  // Runs the two-phase protocol + merge for one query. `terms` are the
  // query's keywords (duplicates fine); `raw_search_params` is the
  // URL-encoded parameter tail forwarded to every shard (q, scheme,
  // explain, ... — everything but k/gstats/expect_gen/deadline_ms, which
  // this call owns). `k` must be > 0: distributed top-∞ would need full
  // result exchange. Spends at most `budget_ms`.
  StatusOr<GatherResult> Search(const std::vector<std::string>& terms,
                                const std::string& raw_search_params,
                                size_t k, uint64_t budget_ms);

  // Background replica readmission probes. Start is idempotent.
  void StartProbes();
  void StopProbes();

  size_t shard_count() const { return shards_.size(); }
  const ShardClient& shard(size_t i) const { return *shards_[i]; }
  const GatherCounters& counters() const { return counters_; }
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  // The whole-corpus statistics pinned for `terms` at the current epoch,
  // collecting from the shards as needed. Exposed for tests; Search uses
  // it internally. On success also returns the per-shard doc-id bases and
  // generations via the out parameters (sized shard_count()).
  StatusOr<server::PinnedStats> CollectStats(
      const std::vector<std::string>& terms, uint64_t budget_ms,
      std::vector<uint64_t>* bases, std::vector<uint64_t>* generations);

 private:
  struct TermStats {
    uint64_t df = 0;
    uint64_t cf = 0;
  };

  // Epoch-guarded cache of summed statistics. All fields under mu_.
  struct StatsCache {
    bool primed = false;                 // corpus totals + bases valid
    uint64_t doc_count = 0;
    uint64_t total_words = 0;
    std::vector<uint64_t> bases;         // per shard, prefix sums
    std::vector<uint64_t> generations;   // per shard, as of this epoch
    std::unordered_map<std::string, TermStats> terms;
  };

  // Invalidate the cache and bump the epoch (a generation moved).
  void InvalidateStats();

  // One shard's phase-2 leg: primary request plus optional hedge race.
  // Returns the winning response (or the primary's failure).
  StatusOr<server::HttpClientResponse> FanOne(size_t shard,
                                              const std::string& target,
                                              uint64_t budget_ms,
                                              ShardOutcome* outcome);

  void ProbeLoop();

  const ScatterGatherOptions options_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
  std::unique_ptr<common::ThreadPool> pool_;

  std::mutex stats_mu_;
  StatsCache stats_cache_;
  std::atomic<uint64_t> stats_epoch_{1};

  GatherCounters counters_;

  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  bool probes_running_ = false;
};

// Parses `"results":[{"doc":u,"score":g},...]` out of a shard's /search
// reply body. Strict: any structural mismatch (garbled or cut body) is
// DataLoss, so corrupted replies count as shard failures instead of
// merging garbage. Exposed for tests.
StatusOr<std::vector<ma::ScoredDoc>> ParseResultsFragment(
    std::string_view body);

// Parses a /shard/stats reply body. Strict like ParseResultsFragment.
struct ShardStatsReply {
  uint64_t generation = 0;
  uint64_t doc_count = 0;
  uint64_t total_words = 0;
  std::vector<server::PinnedTermStats> terms;
};
StatusOr<ShardStatsReply> ParseShardStatsReply(std::string_view body);

}  // namespace graft::router

#endif  // GRAFT_ROUTER_SCATTER_GATHER_H_
